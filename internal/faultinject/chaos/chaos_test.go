package chaos

import (
	"strings"
	"testing"

	"overhaul/internal/faultinject"
	"overhaul/internal/monitor"
)

// TestCampaignFaultFree checks the harness itself: with no faults and
// a healthy channel a campaign must finish with zero violations and
// actually exercise the policy in both directions.
func TestCampaignFaultFree(t *testing.T) {
	res, err := Run(Campaign{Seed: 1, Steps: 120})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("violations in fault-free campaign:\n%s", res.Transcript())
	}
	if res.Monitor.Grants == 0 {
		t.Errorf("campaign produced no grants; script is not exercising the grant path")
	}
	if res.Monitor.Denials == 0 {
		t.Errorf("campaign produced no denials; script is not exercising the deny path")
	}
	if res.Degraded {
		t.Errorf("monitor degraded after a fault-free campaign")
	}
}

// TestCampaignDefaultFaults runs the default fault mix (drops, delays,
// duplicates, helper crashes, stamp losses, timer misfires, render
// failures, transient opens) and requires every fail-closed invariant
// to hold throughout.
func TestCampaignDefaultFaults(t *testing.T) {
	res, err := Run(Campaign{Seed: 7, Steps: 250, Rules: faultinject.DefaultRules()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("invariant violations under default faults:\n%s", res.Transcript())
	}
	if len(strings.Split(res.Schedule, "\n")) < 3 {
		t.Errorf("default rules injected almost nothing:\n%s", res.Schedule)
	}
}

// TestCampaignKillChannelMidSession is the issue's acceptance
// scenario: a campaign that severs the kernel↔X netlink channel
// mid-session must end with every device access denied, a distinct
// "protection degraded" alert on record, and zero grants lacking a
// valid stamp — reproducible from the printed seed.
func TestCampaignKillChannelMidSession(t *testing.T) {
	c := Campaign{
		Seed:          42,
		Steps:         160,
		Rules:         faultinject.DefaultRules(),
		KillChannelAt: 80,
	}
	res, err := Run(c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("seed=%d (re-run with this seed to reproduce)", res.Seed)
	if !res.Ok() {
		t.Fatalf("invariant violations:\n%s", res.Transcript())
	}
	if !res.Degraded {
		t.Errorf("monitor not degraded after mid-session channel kill")
	}
	if res.Monitor.DegradedDenials == 0 {
		t.Errorf("no degraded denials recorded after channel kill")
	}
	foundAlert := false
	for _, l := range res.AlertLines {
		if strings.Contains(l, "protection degraded") && strings.Contains(l, "degraded=true") {
			foundAlert = true
			break
		}
	}
	if !foundAlert {
		t.Errorf("no distinct protection-degraded alert in history:\n%s",
			strings.Join(res.AlertLines, "\n"))
	}
	// The grant-freshness invariant is checked online; double-check
	// offline from the audit lines that no grant happened while the
	// monitor was in degraded mode.
	for _, l := range res.AuditLines {
		if strings.Contains(l, "verdict=grant") && strings.Contains(l, "degraded=1") {
			t.Errorf("grant carries degraded marker: %s", l)
		}
	}
}

// TestCampaignReconnectRecovers checks the outage is not one-way for
// the system as a whole: after ReconnectX the monitor leaves degraded
// mode and a fresh interaction grants again.
func TestCampaignReconnectRecovers(t *testing.T) {
	res, err := Run(Campaign{
		Seed:          11,
		Steps:         120,
		Rules:         faultinject.DefaultRules(),
		KillChannelAt: 40,
		ReconnectAt:   90,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.Transcript())
	}
	if res.Degraded {
		t.Errorf("monitor still degraded after reconnect")
	}
}

// TestCampaignSeededDeterminism is the reproducibility contract: the
// same seed must yield byte-identical transcripts (fault schedule,
// decisions, audit records, alerts), and a different seed must not.
func TestCampaignSeededDeterminism(t *testing.T) {
	c := Campaign{
		Seed:          1337,
		Steps:         180,
		Rules:         faultinject.DefaultRules(),
		KillChannelAt: 120,
	}
	a, err := Run(c)
	if err != nil {
		t.Fatalf("Run #1: %v", err)
	}
	b, err := Run(c)
	if err != nil {
		t.Fatalf("Run #2: %v", err)
	}
	ta, tb := a.Transcript(), b.Transcript()
	if ta != tb {
		t.Fatalf("same seed produced different transcripts:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", ta, tb)
	}
	c.Seed = 1338
	d, err := Run(c)
	if err != nil {
		t.Fatalf("Run #3: %v", err)
	}
	if d.Transcript() == ta {
		t.Errorf("different seeds produced identical transcripts")
	}
	if !a.Ok() || !d.Ok() {
		t.Fatalf("violations:\n%s\n%s", ta, d.Transcript())
	}
}

// TestCampaignStepDefault covers the zero-value convenience.
func TestCampaignStepDefault(t *testing.T) {
	res, err := Run(Campaign{Seed: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Steps != DefaultSteps {
		t.Errorf("Steps = %d, want %d", res.Steps, DefaultSteps)
	}
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.Transcript())
	}
}

// TestViolationSurfaceable makes sure a genuinely broken expectation
// is reported rather than swallowed: with an absurdly small δ every
// grant the monitor makes (δ check disabled via Threshold) would
// trip the checker. We instead verify the checker's arithmetic
// directly on a synthetic result.
func TestViolationSurfaceable(t *testing.T) {
	r := &runner{threshold: monitor.DefaultThreshold, res: &Result{}}
	r.violate(3, "grant-without-stamp", "pid %d", 9)
	if len(r.res.Violations) != 1 || r.res.Violations[0].Invariant != "grant-without-stamp" {
		t.Fatalf("violation not recorded: %+v", r.res.Violations)
	}
	if r.res.Ok() {
		t.Errorf("Ok() true with violations present")
	}
}

// TestCampaignFlightDump is the telemetry acceptance scenario: a
// campaign with an injected channel fault must leave a flight-recorder
// dump whose recent events name the fault point that fired and carry a
// deny reason — the post-mortem a real deployment would read.
func TestCampaignFlightDump(t *testing.T) {
	res, err := Run(Campaign{
		Seed:  11,
		Steps: 120,
		Rules: []faultinject.Rule{
			{Point: faultinject.PointNetlinkUserToKernel, Kind: faultinject.KindError, Prob: 0.4},
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.FlightDumps == 0 || len(res.Flight) == 0 {
		t.Fatalf("no flight dump despite injected channel faults (dumps=%d)", res.FlightDumps)
	}
	joined := strings.Join(res.Flight, "\n")
	if !strings.Contains(joined, string(faultinject.PointNetlinkUserToKernel)) {
		t.Errorf("flight dump names no fault point:\n%s", joined)
	}
	if !strings.Contains(joined, "deny") {
		t.Errorf("flight dump carries no deny reason:\n%s", joined)
	}
	// The dump is part of the deterministic transcript: same seed,
	// same bytes.
	res2, err := Run(Campaign{
		Seed:  11,
		Steps: 120,
		Rules: []faultinject.Rule{
			{Point: faultinject.PointNetlinkUserToKernel, Kind: faultinject.KindError, Prob: 0.4},
		},
	})
	if err != nil {
		t.Fatalf("Run (repeat): %v", err)
	}
	if res.Transcript() != res2.Transcript() {
		t.Errorf("flight-bearing transcript not reproducible across runs")
	}
}
