package auditstore_test

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"overhaul/internal/auditstore"
	"overhaul/internal/clock"
	"overhaul/internal/faultinject"
)

// TestBatchFaultWindows extends the crash matrix with the two
// group-commit windows (auditstore.batch). Serial appends commit as
// one-record batches, so the windows are deterministic: each Append
// evaluates the point twice — once after the batch is drained but
// before its write (window A), once after the write but before the
// acknowledgement (window B). A fault at window A must lose the whole
// batch (recovered == acked); a crash at window B loses only the
// acknowledgement — the batch is durable, so recovery returns exactly
// one record past the acked prefix.
func TestBatchFaultWindows(t *testing.T) {
	specs := []struct {
		name  string
		rule  faultinject.Rule
		extra int // records recovery may return beyond the acked prefix
	}{
		// After=10 lands on the 6th append's window A (evals 0..9 cover
		// appends 1–5); After=11 lands on its window B.
		{"torn-pre-write", faultinject.Rule{Point: faultinject.PointStoreBatch, Kind: faultinject.KindError, After: 10, Count: 1}, 0},
		{"crash-pre-write", faultinject.Rule{Point: faultinject.PointStoreBatch, Kind: faultinject.KindCrash, After: 10, Count: 1}, 0},
		{"crash-pre-ack", faultinject.Rule{Point: faultinject.PointStoreBatch, Kind: faultinject.KindCrash, After: 11, Count: 1}, 1},
	}
	segSizes := []int{1, 3, 8, 32}
	const total = 40

	for _, spec := range specs {
		for _, segRecs := range segSizes {
			spec, segRecs := spec, segRecs
			t.Run(spec.name+"/seg"+itoa(segRecs), func(t *testing.T) {
				dir := t.TempDir()
				inj, err := faultinject.New(int64(segRecs)*77+int64(len(spec.name)), spec.rule)
				if err != nil {
					t.Fatalf("injector: %v", err)
				}
				st, err := auditstore.Open(dir, auditstore.Options{
					SegmentRecords: segRecs, CompactSealed: 3, Hook: inj.Hook(),
				})
				if err != nil {
					t.Fatalf("open: %v", err)
				}

				acked := 0
				sawFail := false
				for i := 0; i < total; i++ {
					if _, err := st.Append(mkRecord(i)); err != nil {
						if !errors.Is(err, auditstore.ErrStoreFailed) {
							t.Fatalf("append %d: %v, want ErrStoreFailed", i, err)
						}
						sawFail = true
						break
					}
					acked++
				}
				if !sawFail {
					t.Fatalf("batch fault never fired in %d appends", total)
				}
				if acked != 5 {
					t.Fatalf("acked %d appends before the window, want 5 (cadence drifted)", acked)
				}
				if err := st.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}

				st2, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: segRecs, CompactSealed: 3})
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				recovered, err := st2.Count()
				if err != nil {
					t.Fatalf("count: %v", err)
				}
				if recovered != acked+spec.extra {
					t.Fatalf("recovered %d records, want acked %d + %d", recovered, acked, spec.extra)
				}
				checkPrefix(t, st2, recovered)
				for i := recovered; i < total; i++ {
					if _, err := st2.Append(mkRecord(i)); err != nil {
						t.Fatalf("append %d after recovery: %v", i, err)
					}
				}
				checkPrefix(t, st2, total)
				if err := st2.Close(); err != nil {
					t.Fatalf("close recovered: %v", err)
				}
			})
		}
	}
}

// TestBatchCrashConcurrent drives concurrent appenders into a
// probabilistic batch fault and checks the group-commit ack contract:
// every acknowledged record survives recovery, and the recovered
// stream is a gap-free prefix of the submitted one.
func TestBatchCrashConcurrent(t *testing.T) {
	const workers = 8
	const perWorker = 60
	for _, kind := range []faultinject.Kind{faultinject.KindError, faultinject.KindCrash} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			inj, err := faultinject.New(42, faultinject.Rule{
				Point: faultinject.PointStoreBatch, Kind: kind, Prob: 0.05,
			})
			if err != nil {
				t.Fatalf("injector: %v", err)
			}
			st, err := auditstore.Open(dir, auditstore.Options{
				SegmentRecords: 16, CompactSealed: 3, Hook: inj.Hook(), BatchRecords: 8,
			})
			if err != nil {
				t.Fatalf("open: %v", err)
			}

			var mu sync.Mutex
			ackedSeqs := map[uint64]bool{}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						seq, err := st.Append(mkRecord(w*perWorker + i))
						if err != nil {
							return
						}
						mu.Lock()
						ackedSeqs[seq] = true
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()
			if len(inj.Events()) == 0 {
				t.Fatal("batch fault never fired")
			}
			if err := st.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			st2, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 16, CompactSealed: 3})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer st2.Close() //overhaul:allow errdrop test cleanup
			recovered, err := st2.Count()
			if err != nil {
				t.Fatalf("count: %v", err)
			}
			// Every acked sequence number is in the recovered prefix.
			for seq := range ackedSeqs {
				if _, ok, err := st2.Get(seq); err != nil || !ok {
					t.Fatalf("acked seq %d missing after recovery (recovered %d)", seq, recovered)
				}
			}
			// The prefix is gap-free: sequences 1..recovered all present.
			for seq := uint64(1); seq <= uint64(recovered); seq++ {
				if _, ok, err := st2.Get(seq); err != nil || !ok {
					t.Fatalf("gap at seq %d in recovered prefix of %d", seq, recovered)
				}
			}
			if recovered < len(ackedSeqs) {
				t.Fatalf("recovered %d < %d acked", recovered, len(ackedSeqs))
			}
		})
	}
}

// TestGroupCommitAppendBatch pins AppendBatch semantics: contiguous
// sequences, one ack for the lot, and batch statistics that reflect
// the BatchRecords bound.
func TestGroupCommitAppendBatch(t *testing.T) {
	st, err := auditstore.Open(t.TempDir(), auditstore.Options{BatchRecords: 32})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close() //overhaul:allow errdrop test cleanup

	recs := make([]auditstore.Record, 100)
	for i := range recs {
		recs[i] = mkRecord(i)
	}
	last, err := st.AppendBatch(recs)
	if err != nil {
		t.Fatalf("append batch: %v", err)
	}
	if last != 100 {
		t.Fatalf("last seq %d, want 100", last)
	}
	checkPrefix(t, st, 100)

	stats := st.BatchStats()
	if stats.Records != 100 {
		t.Fatalf("stats.Records = %d, want 100", stats.Records)
	}
	if stats.Batches != 4 { // 32+32+32+4
		t.Fatalf("stats.Batches = %d, want 4", stats.Batches)
	}
	if stats.MaxBatch != 32 {
		t.Fatalf("stats.MaxBatch = %d, want 32", stats.MaxBatch)
	}
	var histSum uint64
	for _, n := range stats.SizeHist {
		histSum += n
	}
	if histSum != stats.Batches {
		t.Fatalf("size histogram sums to %d, want %d", histSum, stats.Batches)
	}

	// An empty batch is a no-op acknowledging the current durable seq.
	if seq, err := st.AppendBatch(nil); err != nil || seq != 100 {
		t.Fatalf("empty batch: seq=%d err=%v, want 100", seq, err)
	}

	// Sequence pinning: a wrong non-zero Seq rejects the whole batch.
	bad := []auditstore.Record{mkRecord(0)}
	bad[0].Seq = 7
	if _, err := st.AppendBatch(bad); !errors.Is(err, auditstore.ErrSeqMismatch) {
		t.Fatalf("mismatched batch seq: %v, want ErrSeqMismatch", err)
	}
}

// TestGroupCommitConcurrent floods the store from many goroutines and
// checks the commit accounting: everything acked, everything counted,
// the histogram consistent, and no batch beyond the configured bound.
func TestGroupCommitConcurrent(t *testing.T) {
	const workers = 8
	const perWorker = 50
	st, err := auditstore.Open(t.TempDir(), auditstore.Options{
		SegmentRecords: 64, BatchRecords: 16,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close() //overhaul:allow errdrop test cleanup

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := st.Append(mkRecord(w*perWorker + i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	count, err := st.Count()
	if err != nil || count != workers*perWorker {
		t.Fatalf("count = %d err=%v, want %d", count, err, workers*perWorker)
	}
	stats := st.BatchStats()
	if stats.Records != uint64(workers*perWorker) {
		t.Fatalf("stats.Records = %d, want %d", stats.Records, workers*perWorker)
	}
	if stats.MaxBatch > 16 {
		t.Fatalf("stats.MaxBatch = %d exceeds BatchRecords 16", stats.MaxBatch)
	}
	var histSum uint64
	for _, n := range stats.SizeHist {
		histSum += n
	}
	if histSum != stats.Batches {
		t.Fatalf("size histogram sums to %d, want %d", histSum, stats.Batches)
	}
}

// TestGroupCommitFlushInterval exercises the linger path on the
// virtual clock: a lone append lingers until the flush deadline and
// then commits as a singleton batch.
func TestGroupCommitFlushInterval(t *testing.T) {
	clk := clock.NewSimulated()
	st, err := auditstore.Open(t.TempDir(), auditstore.Options{
		BatchRecords: 8, FlushInterval: 10 * time.Millisecond, Clock: clk,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close() //overhaul:allow errdrop test cleanup

	done := make(chan error, 1)
	go func() {
		_, err := st.Append(mkRecord(0))
		done <- err
	}()
	// The leader is lingering on the simulated clock; advance it until
	// the deadline passes and the batch commits.
	deadline := time.After(5 * time.Second) //overhaul:allow clockcheck watchdog for a test that otherwise hangs; the store itself runs on the simulated clock
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("append: %v", err)
			}
			stats := st.BatchStats()
			if stats.Batches != 1 || stats.Records != 1 {
				t.Fatalf("stats = %+v, want one singleton batch", stats)
			}
			checkPrefix(t, st, 1)
			return
		case <-deadline:
			t.Fatal("append never completed under the simulated clock")
		default:
			clk.Advance(time.Millisecond)
			runtime.Gosched()
		}
	}
}

// TestAppendDuringCompactCompletes pins the leadership hand-off: an
// Append that enqueues while Compact owns the committing flag must be
// promoted to commit leader when Compact releases it. A follower that
// only ever waited on commitDone would block forever here — Compact
// returns with a non-empty queue and no leader — so this test hangs
// on its watchdog without the promotion loop in awaitDurableLocked.
func TestAppendDuringCompactCompletes(t *testing.T) {
	compacting := make(chan struct{})
	appendRunning := make(chan struct{})
	var once sync.Once
	hook := func(p faultinject.Point) faultinject.Fault {
		if p == faultinject.PointStoreCompact {
			once.Do(func() {
				close(compacting)
				<-appendRunning
				// Let the appender enqueue and park on the condition
				// variable while Compact still owns leadership.
				time.Sleep(100 * time.Millisecond) //overhaul:allow clockcheck real-time pause widens the Compact window the racing Append must land in; no store clock is in play
			})
		}
		return faultinject.Fault{}
	}
	st, err := auditstore.Open(t.TempDir(), auditstore.Options{
		SegmentRecords: 2, CompactSealed: -1, Hook: hook,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close() //overhaul:allow errdrop test cleanup

	// Seal two segments so Compact has work to do.
	const seeded = 6
	for i := 0; i < seeded; i++ {
		if _, err := st.Append(mkRecord(i)); err != nil {
			t.Fatalf("seed append %d: %v", i, err)
		}
	}
	if sealed, _ := st.SegmentCount(); sealed < 2 {
		t.Fatalf("sealed %d segments, want >= 2", sealed)
	}

	compactDone := make(chan error, 1)
	go func() { compactDone <- st.Compact() }()
	<-compacting
	appendDone := make(chan error, 1)
	go func() {
		close(appendRunning)
		_, err := st.Append(mkRecord(seeded))
		appendDone <- err
	}()

	watchdog := time.After(10 * time.Second) //overhaul:allow clockcheck watchdog for a test that otherwise hangs; the store itself never reads this clock
	select {
	case err := <-appendDone:
		if err != nil {
			t.Fatalf("append racing compact: %v", err)
		}
	case <-watchdog:
		t.Fatal("append hung after Compact released leadership with a non-empty queue")
	}
	select {
	case err := <-compactDone:
		if err != nil {
			t.Fatalf("compact: %v", err)
		}
	case <-watchdog:
		t.Fatal("compact never returned")
	}
	checkPrefix(t, st, seeded+1)
}

// TestGroupCommitFlushIntervalSystemClock exercises the timer-based
// linger: on the system clock a lone append sleeps out FlushInterval
// (no yield-polling) and then commits as a singleton batch, and Close
// wakes a lingering leader early instead of waiting out its timer.
func TestGroupCommitFlushIntervalSystemClock(t *testing.T) {
	st, err := auditstore.Open(t.TempDir(), auditstore.Options{
		BatchRecords: 8, FlushInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := st.Append(mkRecord(0))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	case <-time.After(10 * time.Second): //overhaul:allow clockcheck watchdog for a test that otherwise hangs; FlushInterval here intentionally runs on the real system clock
		t.Fatal("append never completed its linger on the system clock")
	}
	if stats := st.BatchStats(); stats.Batches != 1 || stats.Records != 1 {
		t.Fatalf("stats = %+v, want one singleton batch", stats)
	}
	checkPrefix(t, st, 1)

	// A leader lingering with a long interval must be woken by Close.
	st2, err := auditstore.Open(t.TempDir(), auditstore.Options{
		BatchRecords: 8, FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	done2 := make(chan error, 1)
	go func() {
		_, err := st2.Append(mkRecord(0))
		done2 <- err
	}()
	time.Sleep(20 * time.Millisecond) //overhaul:allow clockcheck give the appender real time to start its hour-long real-clock linger before Close interrupts it
	if err := st2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-done2:
		if err == nil {
			// The linger may have raced Close and committed first;
			// either outcome is legal, a hang is not.
			return
		}
		if !errors.Is(err, auditstore.ErrClosed) {
			t.Fatalf("append interrupted by close: %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second): //overhaul:allow clockcheck watchdog: without the linger wake-up this append sleeps a full hour
		t.Fatal("Close did not wake the lingering commit leader")
	}
}

// TestBatchBucketLabels pins the histogram bucket naming the load
// generator's throughput report prints.
func TestBatchBucketLabels(t *testing.T) {
	want := []string{"1", "2", "le4", "le8", "le16", "le32", "le64", "le128", "gt128"}
	for i, w := range want {
		if got := auditstore.BatchBucketLabel(i); got != w {
			t.Errorf("bucket %d label = %q, want %q", i, got, w)
		}
	}
}
