// Package telemetry is the observability subsystem for the Overhaul
// enforcement stack: metrics, decision-path tracing, and a flight
// recorder.
//
// The paper's evaluation (§V) rests on reading Overhaul's logs to see
// which applications were granted access; a production deployment of
// the same architecture additionally needs rates, latencies, and — for
// any single decision — the causal chain that produced it (input →
// notification → syscall → decision → alert). This package provides the
// three instruments the enforcement seams thread through:
//
//   - a metrics registry: counters, gauges, and fixed-bucket latency
//     histograms keyed by (subsystem, name, labels), timestamped on the
//     injected clock so snapshots are deterministic under the
//     simulated clock;
//   - a decision-path tracer: spans with parent/child links whose IDs
//     are sequential (never random), propagated across the kernel↔X
//     netlink channel and the IPC stamp-carrying paths the same way
//     interaction timestamps already propagate;
//   - a flight recorder: a bounded ring of recent events that is
//     snapshot-dumped whenever a denial, a degradation, or a
//     chaos-invariant violation fires, so every fail-closed event is
//     explainable after the fact.
//
// A nil *Recorder is the disabled state: every method is a no-op and
// the instrumented hot paths (monitor.Decide in particular) add zero
// allocations, verified by BenchmarkDecideTelemetryDisabled.
package telemetry

import (
	"sync"
	"time"

	"overhaul/internal/clock"
)

// Defaults for the bounded stores. They are deliberately generous for
// interactive use and small enough that a runaway campaign cannot
// exhaust memory.
const (
	DefaultSpanCapacity   = 8192
	DefaultFlightCapacity = 256
	DefaultDumpCapacity   = 8
)

// Options bounds the recorder's stores. Zero fields select the
// defaults.
type Options struct {
	// SpanCapacity bounds retained spans (oldest evicted).
	SpanCapacity int
	// FlightCapacity bounds the flight-recorder ring.
	FlightCapacity int
	// DumpCapacity bounds retained flight dumps (oldest evicted).
	DumpCapacity int
}

// Recorder is the telemetry sink shared by every instrumented
// subsystem. It is safe for concurrent use; all methods are no-ops on a
// nil receiver, which is how telemetry is disabled.
type Recorder struct {
	clk clock.Clock

	spanCap   int
	flightCap int
	dumpCap   int

	mu sync.Mutex
	// metrics registry
	counters map[metricKey]*counter
	gauges   map[metricKey]*gauge
	hists    map[metricKey]*histogram
	// tracer
	traceSeq     uint64
	spanSeq      uint64
	spans        []*Span // creation order, bounded by spanCap
	spansDropped uint64
	// flight recorder
	flightSeq    uint64
	flight       []FlightEvent // ring, bounded by flightCap
	flightHead   int
	flightLen    int
	dumps        []FlightDump // bounded by dumpCap
	dumpsDropped uint64
}

// New constructs an enabled recorder on the given clock with default
// capacities.
func New(clk clock.Clock) *Recorder {
	return NewWithOptions(clk, Options{})
}

// NewWithOptions constructs an enabled recorder with explicit bounds.
// A nil clock selects a fresh simulated clock (deterministic output).
func NewWithOptions(clk clock.Clock, opts Options) *Recorder {
	if clk == nil {
		clk = clock.NewSimulated()
	}
	if opts.SpanCapacity <= 0 {
		opts.SpanCapacity = DefaultSpanCapacity
	}
	if opts.FlightCapacity <= 0 {
		opts.FlightCapacity = DefaultFlightCapacity
	}
	if opts.DumpCapacity <= 0 {
		opts.DumpCapacity = DefaultDumpCapacity
	}
	return &Recorder{
		clk:       clk,
		spanCap:   opts.SpanCapacity,
		flightCap: opts.FlightCapacity,
		dumpCap:   opts.DumpCapacity,
		counters:  make(map[metricKey]*counter),
		gauges:    make(map[metricKey]*gauge),
		hists:     make(map[metricKey]*histogram),
	}
}

// Enabled reports whether the recorder records anything. Instrumented
// code may use it to skip label construction on hot paths; every method
// is nil-safe regardless.
func (r *Recorder) Enabled() bool { return r != nil }

// now returns the recorder's current instant. Callers must hold no
// assumption about monotonicity beyond what the injected clock gives.
func (r *Recorder) now() time.Time { return r.clk.Now() }
