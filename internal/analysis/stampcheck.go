package analysis

import (
	"go/ast"
	"strings"
)

// Stampcheck enforces the paper's core sender→receiver rule (§IV-B):
// every IPC data-transfer path must run the timestamp-propagation
// protocol from internal/ipc/stamps.go.
//
// In internal/ipc, every exported send-side method (Send*/Write*) must
// transitively reach carrier.onSend or carrier.onAccess, and every
// receive-side method (Recv*/Read*) must reach carrier.onRecv or
// carrier.onAccess — reachability computed over the package-local call
// graph, so helpers in between are fine. A new IPC family added
// without wiring the protocol fails the build gate immediately.
//
// In internal/kernel, constructing an ipc resource with a literal nil
// stamp store silently disables propagation for that object, so any
// ipc.New*(nil, ...) call is flagged; the kernel must thread
// k.stamps() (which returns nil only under explicit P2 ablation).
var Stampcheck = &Analyzer{
	Name: "stampcheck",
	Doc: "every IPC send/recv path must run the stamp-propagation protocol; " +
		"kernel constructors must not pass a nil stamp store",
	Run: runStampcheck,
}

// sendReach and recvReach are the stamps.go helpers that satisfy each
// direction. onAccess (the shared-memory fault path) covers both.
var (
	sendReach = map[string]bool{"onSend": true, "onAccess": true}
	recvReach = map[string]bool{"onRecv": true, "onAccess": true}
)

func runStampcheck(pass *Pass) {
	switch {
	case strings.HasSuffix(pass.Pkg.Dir, "internal/ipc"):
		checkIPCPropagation(pass)
	case strings.HasSuffix(pass.Pkg.Dir, "internal/kernel"):
		checkKernelStampStores(pass)
	}
}

// transferDirection classifies an exported method name as a data
// transfer endpoint. Constructors, Close, Len, stat accessors etc.
// carry no payload and are exempt.
func transferDirection(name string) (send, recv bool) {
	switch {
	case name == "Send" || name == "Write" ||
		strings.HasPrefix(name, "Send") || strings.HasPrefix(name, "Write"):
		return true, false
	case name == "Recv" || name == "Read" ||
		strings.HasPrefix(name, "Recv") || strings.HasPrefix(name, "Read"):
		return false, true
	}
	return false, false
}

func checkIPCPropagation(pass *Pass) {
	// Package-local call graph over bare callee names. onSend/onRecv/
	// onAccess are unique within internal/ipc, so name-level
	// reachability is exact enough.
	calls := make(map[string]map[string]bool) // caller decl -> callee names
	type endpoint struct {
		decl string
		fn   *ast.FuncDecl
		send bool
	}
	var endpoints []endpoint

	for _, f := range pass.Pkg.Files {
		if isTestFile(f.Name) {
			continue
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			callees := make(map[string]bool)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					callees[fun.Name] = true
				case *ast.SelectorExpr:
					callees[fun.Sel.Name] = true
				}
				return true
			})
			calls[name] = callees
			if fn.Name.IsExported() && fn.Recv != nil {
				if send, recv := transferDirection(name); send || recv {
					endpoints = append(endpoints, endpoint{decl: name, fn: fn, send: send})
				}
			}
		}
	}

	reaches := func(from string, targets map[string]bool) bool {
		seen := map[string]bool{from: true}
		queue := []string{from}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for callee := range calls[cur] {
				if targets[callee] {
					return true
				}
				if !seen[callee] {
					seen[callee] = true
					queue = append(queue, callee)
				}
			}
		}
		return false
	}

	for _, ep := range endpoints {
		targets, half := recvReach, "receiver (onRecv/onAccess)"
		if ep.send {
			targets, half = sendReach, "sender (onSend/onAccess)"
		}
		if !reaches(ep.decl, targets) {
			recv := localTypeName(ep.fn.Recv.List[0].Type)
			pass.Reportf(ep.fn.Pos(),
				"%s.%s transfers data but never reaches the %s half of the stamp-propagation protocol (paper §IV-B)",
				recv, ep.fn.Name.Name, half)
		}
	}
}

func checkKernelStampStores(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if isTestFile(f.Name) {
			continue
		}
		ipcName := importName(f.AST, "overhaul/internal/ipc")
		if ipcName == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			qual, name, ok := selectorCall(call)
			if !ok || qual != ipcName || !strings.HasPrefix(name, "New") || len(call.Args) == 0 {
				return true
			}
			if id, ok := call.Args[0].(*ast.Ident); ok && id.Name == "nil" {
				pass.Reportf(call.Args[0].Pos(),
					"%s.%s with a nil stamp store disables P2 propagation: pass k.stamps() so ablation stays explicit",
					qual, name)
			}
			return true
		})
	}
}
