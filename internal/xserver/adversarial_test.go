package xserver

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"overhaul/internal/monitor"
)

// TestOwnerCannotNotifyWrongWindow: even the legitimate selection owner
// may only SendEvent a SelectionNotify to the pending requestor — not to
// an arbitrary third window.
func TestOwnerCannotNotifyWrongWindow(t *testing.T) {
	e := newXEnv(t, true)
	src := e.connect(t, 1, "owner")
	tgt := e.connect(t, 2, "target")
	bystander := e.connect(t, 3, "bystander")
	srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	tgtWin := e.mapVisibleWindow(t, tgt, 200, 0, 100, 100)
	byWin := e.mapVisibleWindow(t, bystander, 400, 0, 100, 100)

	runCopy(t, e, src, srcWin)
	e.interactWith(t, tgtWin)
	if err := tgt.ConvertSelection(clipboard, "UTF8_STRING", "P", tgtWin); err != nil {
		t.Fatalf("ConvertSelection: %v", err)
	}
	notify := Event{Type: SelectionNotify, Selection: clipboard, Property: "P"}
	if err := src.SendEvent(byWin, notify); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("notify to bystander = %v, want ErrBadAccess", err)
	}
	// The correct destination still works.
	if err := src.SendEvent(tgtWin, notify); err != nil {
		t.Fatalf("notify to requestor = %v", err)
	}
}

// TestNotifyBeforeConvertBlocked: a SelectionNotify with no pending
// transfer is forged by definition.
func TestNotifyBeforeConvertBlocked(t *testing.T) {
	e := newXEnv(t, true)
	src := e.connect(t, 1, "owner")
	tgt := e.connect(t, 2, "target")
	srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	tgtWin := e.mapVisibleWindow(t, tgt, 200, 0, 100, 100)
	runCopy(t, e, src, srcWin)
	notify := Event{Type: SelectionNotify, Selection: clipboard, Property: "P"}
	if err := src.SendEvent(tgtWin, notify); !errors.Is(err, ErrBadAccess) {
		t.Fatalf("notify with no pending transfer = %v, want ErrBadAccess", err)
	}
}

// TestSelectionOwnerDisconnectClearsOwnership verifies the selection is
// torn down with its owner, so stale owners cannot be impersonated.
func TestSelectionOwnerDisconnectClearsOwnership(t *testing.T) {
	e := newXEnv(t, true)
	src := e.connect(t, 1, "owner")
	srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	runCopy(t, e, src, srcWin)
	if err := src.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	other := e.connect(t, 2, "other")
	owner, err := other.GetSelectionOwner(clipboard)
	if err != nil || owner != Root {
		t.Fatalf("owner after disconnect = %d, %v; want Root", owner, err)
	}
}

// TestRapidMapUnmapNeverEarnsTrust: a window cycling visibility faster
// than the threshold never generates notifications no matter how many
// cycles it performs.
func TestRapidMapUnmapNeverEarnsTrust(t *testing.T) {
	e := newXEnv(t, true)
	mal := e.connect(t, 666, "flasher")
	win, err := mal.CreateWindow(0, 0, 300, 300)
	if err != nil {
		t.Fatalf("CreateWindow: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := mal.MapWindow(win); err != nil {
			t.Fatalf("MapWindow: %v", err)
		}
		e.clk.Advance(200 * time.Millisecond) // below the 1 s threshold
		e.srv.HardwareClick(10, 10)
		if err := mal.UnmapWindow(win); err != nil {
			t.Fatalf("UnmapWindow: %v", err)
		}
		e.clk.Advance(5 * time.Second)
	}
	if got := e.pol.notificationCount(); got != 0 {
		t.Fatalf("notifications = %d, want 0", got)
	}
}

// TestInFlightClearedAfterDelete: once the paste target deletes the
// property, the transfer is over and the property name becomes ordinary
// again (a new value is readable by anyone on a vanilla basis).
func TestInFlightClearedAfterDelete(t *testing.T) {
	e := newXEnv(t, true)
	src := e.connect(t, 1, "src")
	tgt := e.connect(t, 2, "tgt")
	srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	tgtWin := e.mapVisibleWindow(t, tgt, 200, 0, 100, 100)
	runCopy(t, e, src, srcWin)
	got := runPaste(t, e, src, tgt, tgtWin, []byte("data"))
	if string(got) != "data" {
		t.Fatalf("pasted %q", got)
	}
	// The target reuses the property name for its own purposes; a
	// third client can read it now (ordinary X semantics).
	if err := tgt.ChangeProperty(tgtWin, "XSEL_DATA", []byte("public")); err != nil {
		t.Fatalf("ChangeProperty: %v", err)
	}
	third := e.connect(t, 3, "third")
	data, err := third.GetProperty(tgtWin, "XSEL_DATA")
	if err != nil || string(data) != "public" {
		t.Fatalf("post-transfer GetProperty = %q, %v", data, err)
	}
}

// TestSecondTransferAfterFirstCompletes ensures the pending state fully
// recycles.
func TestSecondTransferAfterFirstCompletes(t *testing.T) {
	e := newXEnv(t, true)
	src := e.connect(t, 1, "src")
	tgt := e.connect(t, 2, "tgt")
	srcWin := e.mapVisibleWindow(t, src, 0, 0, 100, 100)
	tgtWin := e.mapVisibleWindow(t, tgt, 200, 0, 100, 100)
	runCopy(t, e, src, srcWin)
	for i := 0; i < 3; i++ {
		payload := []byte(fmt.Sprintf("round-%d", i))
		if got := runPaste(t, e, src, tgt, tgtWin, payload); string(got) != string(payload) {
			t.Fatalf("round %d pasted %q", i, got)
		}
	}
}

// Property: arbitrary sequences of operations on a client's *own*
// window never produce BadAccess (ownership is sufficient authority).
func TestOwnWindowOpsNeverBadAccess(t *testing.T) {
	e := newXEnv(t, true)
	c := e.connect(t, 1, "c")
	win := e.mapVisibleWindow(t, c, 0, 0, 100, 100)

	f := func(ops []uint8) bool {
		for _, op := range ops {
			var err error
			switch op % 6 {
			case 0:
				err = c.MapWindow(win)
			case 1:
				err = c.RaiseWindow(win)
			case 2:
				err = c.Draw(win, []byte{op})
			case 3:
				err = c.ChangeProperty(win, "X", []byte{op})
			case 4:
				_, err = c.GetImage(win)
			case 5:
				err = c.SelectPropertyEvents(win)
			}
			if errors.Is(err, ErrBadAccess) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentClientsSmoke runs input, drawing, and capture from
// several goroutines to shake out races (run with -race).
func TestConcurrentClientsSmoke(t *testing.T) {
	e := newXEnv(t, true)
	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := e.srv.Connect(100+i, fmt.Sprintf("c%d", i))
			if err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			win, err := c.CreateWindow(i*100, 0, 90, 90)
			if err != nil {
				t.Errorf("CreateWindow: %v", err)
				return
			}
			if err := c.MapWindow(win); err != nil {
				t.Errorf("MapWindow: %v", err)
				return
			}
			for j := 0; j < 50; j++ {
				_ = c.Draw(win, []byte{byte(j)})
				_, _ = c.GetImage(win)
				e.srv.HardwareClick(i*100+5, 5)
				c.DrainEvents()
			}
		}(i)
	}
	wg.Wait()
}

// TestAlertHistoryBounded verifies the overlay record cap holds under an
// alert flood from many distinct processes (coalescing does not apply
// across PIDs).
func TestAlertHistoryBounded(t *testing.T) {
	e := newXEnv(t, true)
	for pid := 0; pid < 5000; pid++ {
		e.srv.ShowAlert(alertRequestFor(pid))
	}
	if got := len(e.srv.AlertHistory()); got > 4096 {
		t.Fatalf("alert history = %d, want <= 4096", got)
	}
	if s := e.srv.StatsSnapshot(); s.AlertsShown != 5000 {
		t.Fatalf("AlertsShown = %d, want 5000", s.AlertsShown)
	}
}

// alertRequestFor builds a distinct alert request per pid.
func alertRequestFor(pid int) (req monitor.AlertRequest) {
	req.PID = pid
	req.Op = OpMic
	return req
}
