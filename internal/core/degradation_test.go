package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/devfs"
	"overhaul/internal/faultinject"
	"overhaul/internal/kernel"
	"overhaul/internal/monitor"
)

// bootWithFaults boots an enforcing system whose seams evaluate the
// given injector.
func bootWithFaults(t *testing.T, inj *faultinject.Injector) (*System, string) {
	t.Helper()
	clk := clock.NewSimulated()
	inj.SetClock(clk)
	sys, err := Boot(Options{
		Clock:       clk,
		Enforce:     true,
		AlertSecret: "tabby-cat",
		FaultHook:   inj.Hook(),
	})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach mic: %v", err)
	}
	return sys, mic
}

// TestChannelRetriesTransientFault: a couple of injected drops on the
// X→kernel call are absorbed by the bounded retry — the query
// succeeds, the channel stays up, and the monitor never degrades.
func TestChannelRetriesTransientFault(t *testing.T) {
	inj, err := faultinject.New(1, faultinject.Rule{
		Point: faultinject.PointNetlinkUserToKernel,
		Kind:  faultinject.KindError,
		Count: DefaultChannelRetries, // fewer failures than attempts
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sys, mic := bootWithFaults(t, inj)
	app := launchSettled(t, sys, "recorder")

	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(50 * time.Millisecond)
	h, err := app.OpenDevice(mic)
	if err != nil {
		t.Fatalf("open after transient channel faults should grant, got %v", err)
	}
	_ = h.Close()
	if sys.ChannelDown() {
		t.Error("channel marked down although retries succeeded")
	}
	if _, degraded := sys.Kernel.Monitor().DegradedReason(); degraded {
		t.Error("monitor degraded although retries succeeded")
	}
}

// TestChannelExhaustionFailsClosed: when the fault outlasts the retry
// budget the channel goes down, the monitor flips to degraded mode,
// every subsequent device access denies with the distinct degraded
// reason, and the X server shows the degraded banner.
func TestChannelExhaustionFailsClosed(t *testing.T) {
	inj, err := faultinject.New(1, faultinject.Rule{
		Point: faultinject.PointNetlinkUserToKernel,
		Kind:  faultinject.KindError,
		Count: 100, // outlasts every retry
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sys, mic := bootWithFaults(t, inj)
	app := launchSettled(t, sys, "recorder")

	// The interaction notification burns through the retries and kills
	// the channel; input delivery itself still works.
	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	if !sys.ChannelDown() {
		t.Fatal("channel still up after exhausted retries")
	}
	reason, degraded := sys.Kernel.Monitor().DegradedReason()
	if !degraded {
		t.Fatal("monitor not degraded after channel death")
	}

	if _, err := app.OpenDevice(mic); !errors.Is(err, kernel.ErrAccessDenied) {
		t.Fatalf("open with dead channel = %v, want ErrAccessDenied", err)
	}
	audit := sys.Audit()
	last := audit[len(audit)-1]
	if last.Verdict != monitor.VerdictDeny || !last.Degraded {
		t.Fatalf("last audit record = %+v, want degraded denial", last)
	}
	if !strings.Contains(last.Reason, "protection degraded") || !strings.Contains(last.Reason, reason) {
		t.Fatalf("denial reason %q lacks distinct degraded wording", last.Reason)
	}

	// The X server raised its degraded banner when its policy call
	// failed — visible evidence, not a silent denial.
	banner := false
	for _, a := range sys.X.AlertHistory() {
		if a.Degraded && strings.Contains(a.Message, "protection degraded") {
			banner = true
		}
	}
	if !banner {
		t.Error("no degraded banner in X alert history")
	}
}

// TestReconnectClearsDegradation: ReconnectX is the operator's path
// back — after it, a fresh interaction grants again and the degraded
// state is gone everywhere.
func TestReconnectClearsDegradation(t *testing.T) {
	inj, err := faultinject.New(1, faultinject.Rule{
		Point: faultinject.PointNetlinkUserToKernel,
		Kind:  faultinject.KindError,
		Count: 4, // kill the first notify's retry budget, then heal
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sys, mic := bootWithFaults(t, inj)
	app := launchSettled(t, sys, "recorder")

	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	if !sys.ChannelDown() {
		t.Fatal("channel should be down")
	}
	if err := sys.ReconnectX(); err != nil {
		t.Fatalf("ReconnectX: %v", err)
	}
	if sys.ChannelDown() {
		t.Fatal("channel still down after reconnect")
	}
	if _, degraded := sys.Kernel.Monitor().DegradedReason(); degraded {
		t.Fatal("monitor still degraded after reconnect")
	}
	if _, degraded := sys.X.Degraded(); degraded {
		t.Fatal("X server still degraded after reconnect")
	}

	if err := app.Click(); err != nil {
		t.Fatalf("Click after reconnect: %v", err)
	}
	sys.Settle(50 * time.Millisecond)
	h, err := app.OpenDevice(mic)
	if err != nil {
		t.Fatalf("open after reconnect = %v, want grant", err)
	}
	_ = h.Close()
}

// TestAlertRenderFailureIsNotSilent: a failed alert render neither
// blocks the (already decided) grant nor disappears — the failure is
// counted and the alert is kept in history, flagged.
func TestAlertRenderFailureIsNotSilent(t *testing.T) {
	inj, err := faultinject.New(1, faultinject.Rule{
		Point: faultinject.PointAlertRender,
		Kind:  faultinject.KindError,
		Count: 1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sys, mic := bootWithFaults(t, inj)
	app := launchSettled(t, sys, "recorder")

	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(50 * time.Millisecond)
	h, err := app.OpenDevice(mic)
	if err != nil {
		t.Fatalf("open = %v, want grant despite render failure", err)
	}
	_ = h.Close()

	if got := sys.X.StatsSnapshot().AlertRenderFailures; got != 1 {
		t.Fatalf("AlertRenderFailures = %d, want 1", got)
	}
	if len(sys.ActiveAlerts()) != 0 {
		t.Error("failed render still listed as an active overlay")
	}
	hist := sys.X.AlertHistory()
	if len(hist) == 0 || !hist[len(hist)-1].RenderFailed {
		t.Fatalf("render failure not recorded in history: %+v", hist)
	}
}

// TestTransientOpenFaultDenoted: an injected transient kernel error on
// the open path converts to a denial with an audit record (fail
// closed, not silent) and does not poison later opens.
func TestTransientOpenFaultDenoted(t *testing.T) {
	inj, err := faultinject.New(1, faultinject.Rule{
		Point: faultinject.PointKernelOpen,
		Kind:  faultinject.KindError,
		Count: 1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sys, mic := bootWithFaults(t, inj)
	app := launchSettled(t, sys, "recorder")

	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(50 * time.Millisecond)
	before := len(sys.Audit())
	if _, err := app.OpenDevice(mic); !errors.Is(err, kernel.ErrTransientIO) {
		t.Fatalf("open = %v, want ErrTransientIO", err)
	}
	audit := sys.Audit()
	if len(audit) <= before {
		t.Fatal("transient open failure left no audit record")
	}
	last := audit[len(audit)-1]
	if last.Verdict != monitor.VerdictDeny || !strings.Contains(last.Reason, "fail closed") {
		t.Fatalf("audit record = %+v, want fail-closed denial", last)
	}

	// The very next open (fault exhausted) must behave normally.
	h, err := app.OpenDevice(mic)
	if err != nil {
		t.Fatalf("open after fault = %v, want grant", err)
	}
	_ = h.Close()
}
