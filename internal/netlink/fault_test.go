package netlink

import (
	"errors"
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/faultinject"
)

// newFaultyPair wires a hub with a connected peer and an injector.
func newFaultyPair(t *testing.T, rules ...faultinject.Rule) (*Hub, *Conn, *faultinject.Injector, *clock.Simulated) {
	t.Helper()
	h, err := NewHub(AuthenticatorFunc(allowAll))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	inj, err := faultinject.New(1, rules...)
	if err != nil {
		t.Fatalf("faultinject.New: %v", err)
	}
	clk := clock.NewSimulated()
	inj.SetClock(clk)
	h.SetFaultHook(inj.Hook())
	conn, err := h.Connect(42, func(msg any) (any, error) { return "user-reply", nil })
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	return h, conn, inj, clk
}

// TestCallDropFault: an injected drop on the user→kernel direction
// surfaces as ErrChannelFault (wrapping ErrInjected) and never reaches
// the kernel handler; the next message flows normally.
func TestCallDropFault(t *testing.T) {
	h, conn, _, _ := newFaultyPair(t, faultinject.Rule{
		Point: faultinject.PointNetlinkUserToKernel,
		Kind:  faultinject.KindError,
		Count: 1,
	})
	calls := 0
	h.SetKernelHandler(func(msg any) (any, error) { calls++; return "kernel-reply", nil })

	_, err := conn.Call("q")
	if !errors.Is(err, ErrChannelFault) {
		t.Fatalf("Call = %v, want ErrChannelFault", err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Call error %v does not wrap ErrInjected", err)
	}
	if calls != 0 {
		t.Fatalf("kernel handler ran %d times for a dropped message", calls)
	}
	if got := h.StatsSnapshot().Dropped; got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}

	reply, err := conn.Call("q")
	if err != nil || reply != "kernel-reply" {
		t.Fatalf("Call after fault = (%v,%v), want kernel-reply", reply, err)
	}
	if calls != 1 {
		t.Fatalf("handler calls = %d, want 1", calls)
	}
}

// TestCallDuplicateFault: a duplicated message runs the kernel handler
// twice; the retransmission's reply wins.
func TestCallDuplicateFault(t *testing.T) {
	h, conn, _, _ := newFaultyPair(t, faultinject.Rule{
		Point: faultinject.PointNetlinkUserToKernel,
		Kind:  faultinject.KindDuplicate,
		Count: 1,
	})
	calls := 0
	h.SetKernelHandler(func(msg any) (any, error) { calls++; return calls, nil })

	reply, err := conn.Call("notify")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if calls != 2 {
		t.Fatalf("handler calls = %d, want 2 (double delivery)", calls)
	}
	if reply != 2 {
		t.Fatalf("reply = %v, want the retransmission's (2)", reply)
	}
	if got := h.StatsSnapshot().Duplicated; got != 1 {
		t.Fatalf("Duplicated = %d, want 1", got)
	}
}

// TestCallDelayFault: an injected delay advances the virtual clock
// before delivery — the message arrives late but intact.
func TestCallDelayFault(t *testing.T) {
	const lag = 250 * time.Millisecond
	h, conn, _, clk := newFaultyPair(t, faultinject.Rule{
		Point: faultinject.PointNetlinkUserToKernel,
		Kind:  faultinject.KindDelay,
		Delay: lag,
		Count: 1,
	})
	var seenAt time.Time
	h.SetKernelHandler(func(msg any) (any, error) { seenAt = clk.Now(); return nil, nil })

	start := clk.Now()
	if _, err := conn.Call("notify"); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got := seenAt.Sub(start); got != lag {
		t.Fatalf("message delivered after %v, want %v", got, lag)
	}
	if got := h.StatsSnapshot().Delayed; got != 1 {
		t.Fatalf("Delayed = %d, want 1", got)
	}
}

// TestCallUserDropFault: the kernel→user direction fails closed the
// same way.
func TestCallUserDropFault(t *testing.T) {
	h, _, _, _ := newFaultyPair(t, faultinject.Rule{
		Point: faultinject.PointNetlinkKernelToUser,
		Kind:  faultinject.KindError,
		Count: 1,
	})
	if _, err := h.CallUser(42, "alert"); !errors.Is(err, ErrChannelFault) {
		t.Fatalf("CallUser = %v, want ErrChannelFault", err)
	}
	reply, err := h.CallUser(42, "alert")
	if err != nil || reply != "user-reply" {
		t.Fatalf("CallUser after fault = (%v,%v), want user-reply", reply, err)
	}
}

// TestFaultsRequireArmedHook: with no hook the fault counters stay
// zero and traffic is untouched — production builds pay nothing.
func TestFaultsRequireArmedHook(t *testing.T) {
	h, err := NewHub(AuthenticatorFunc(allowAll))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	h.SetKernelHandler(func(msg any) (any, error) { return msg, nil })
	conn, err := h.Connect(7, func(msg any) (any, error) { return msg, nil })
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	for i := 0; i < 50; i++ {
		if _, err := conn.Call(i); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	s := h.StatsSnapshot()
	if s.Dropped+s.Delayed+s.Duplicated != 0 {
		t.Fatalf("fault counters moved without a hook: %+v", s)
	}
}
