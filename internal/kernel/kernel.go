// Package kernel implements the simulated operating-system kernel that
// Overhaul is retrofitted into.
//
// It reproduces the pieces of Linux the paper modifies or relies on
// (§IV-B): a process table whose task structs carry the interaction
// timestamp, fork/clone that duplicate it (propagation policy P1), an
// open(2) path with UNIX permission checks plus sensitive-device
// mediation, the udev mapping sink, process introspection used to
// authenticate the netlink peer, and the ptrace guard that disables a
// debugged process's permissions.
//
// The process table is lock-striped by pid (see procTable) and the
// per-task interaction stamp is an atomically loadable value, so the
// monitor's decision path — pid lookup, stamp read, ptrace-guard check
// — takes no lock at all and scales across cores; stamp writes are a
// lock-free newest-wins CAS (Process.adoptStamp).
package kernel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/devfs"
	"overhaul/internal/faultinject"
	"overhaul/internal/fs"
	"overhaul/internal/monitor"
	"overhaul/internal/probe"
	"overhaul/internal/telemetry"
)

// Sentinel errors.
var (
	ErrAccessDenied  = errors.New("access denied by permission monitor")
	ErrNoSuchProcess = errors.New("no such process")
	ErrNotPermitted  = errors.New("operation not permitted")
	ErrDeadProcess   = errors.New("process has exited")
	// ErrTransientIO marks an injected transient I/O failure inside
	// open(2). For sensitive devices the failure is converted into a
	// denial with an audit record — never a silent failure, never a
	// grant.
	ErrTransientIO = errors.New("kernel: transient I/O error")
)

// State is a process lifecycle state.
type State int

// Process states.
const (
	StateRunning State = iota + 1
	StateZombie
	StateDead
)

// Config parameterises the kernel.
type Config struct {
	// Monitor configures the embedded permission monitor.
	Monitor monitor.Config
	// DisablePtraceGuard turns off the default-on protection that
	// zeroes a traced process's permissions (toggleable through the
	// proc node, paper §IV-B).
	DisablePtraceGuard bool
	// DeviceInitRounds sets the simulated per-open driver
	// initialisation cost for device nodes (see devicework.go). Zero
	// disables it (unit tests); the benchmark harness uses
	// DefaultDeviceInitRounds.
	DeviceInitRounds int
	// StorageRounds sets the simulated per-create storage cost
	// (journaling + block allocation on a real filesystem), so the
	// Bonnie++ row compares Overhaul's lookup against a realistic
	// baseline. Zero disables it.
	StorageRounds int
	// DisableP1 turns off fork-time interaction-stamp inheritance
	// (ablation of propagation policy P1; breaks launchers and CLI
	// tools by design).
	DisableP1 bool
	// DisableP2 turns off IPC interaction-stamp propagation (ablation
	// of propagation policy P2; breaks multi-process applications by
	// design).
	DisableP2 bool
	// FaultHook, when non-nil, is consulted at the kernel's fault
	// points: PointKernelOpen (transient open errors), PointStampWrite
	// (stamp-store write loss, via the ipc layer) and PointShmTimer
	// (wait-list misfires, via shm segments).
	FaultHook faultinject.Hook
}

// Stats aggregates kernel activity.
type Stats struct {
	Opens       uint64
	DeviceOpens uint64
	Denials     uint64
	Forks       uint64
	Execs       uint64
	Exits       uint64
	// OpenFaults counts injected transient open(2) failures.
	OpenFaults uint64
}

// kernelStats are the live counters backing Stats, atomics so syscall
// paths never serialize to count.
type kernelStats struct {
	opens       atomic.Uint64
	deviceOpens atomic.Uint64
	denials     atomic.Uint64
	forks       atomic.Uint64
	execs       atomic.Uint64
	exits       atomic.Uint64
	openFaults  atomic.Uint64
}

// Kernel is the simulated OS kernel. It is safe for concurrent use;
// everything the decision hot path touches (process table, stamps,
// guard flag, counters) is sharded or atomic, and the single remaining
// mutex guards only the udev device map.
type Kernel struct {
	clk    clock.Clock
	fsys   *fs.FS
	mon    *monitor.Monitor
	faults faultinject.Hook    // immutable after New
	tel    *telemetry.Recorder // immutable after New; nil-safe
	// probeOpen is the kernel.open attach point, resolved once at New;
	// one atomic load per open while unattached (nil check when no
	// registry was configured).
	probeOpen *probe.Hook

	table   *procTable
	nextPID atomic.Int64
	// procPool recycles exited Process structs (type-stable task
	// structs, the SLAB_TYPESAFE_BY_RCU analogue): Exit puts, Spawn and
	// Fork get. Per-kernel so a struct's k pointer never changes, which
	// keeps reincarnation races confined to the atomic fields.
	procPool    sync.Pool
	ptraceGuard atomic.Bool
	stats       kernelStats
	devRounds   int  // immutable after New
	storRounds  int  // immutable after New
	disableP1   bool // immutable after New
	disableP2   bool // immutable after New
	ipc         *ipcTables

	mu     sync.Mutex
	devmap map[string]devfs.Class
}

// New constructs a kernel over the given filesystem and clock.
func New(clk clock.Clock, fsys *fs.FS, cfg Config) (*Kernel, error) {
	if clk == nil {
		return nil, errors.New("kernel: nil clock")
	}
	if fsys == nil {
		return nil, errors.New("kernel: nil filesystem")
	}
	k := &Kernel{
		clk:        clk,
		fsys:       fsys,
		faults:     cfg.FaultHook,
		tel:        cfg.Monitor.Telemetry,
		table:      newProcTable(),
		devmap:     make(map[string]devfs.Class),
		devRounds:  cfg.DeviceInitRounds,
		storRounds: cfg.StorageRounds,
		disableP1:  cfg.DisableP1,
		disableP2:  cfg.DisableP2,
		ipc:        newIPCTables(),
	}
	k.ptraceGuard.Store(!cfg.DisablePtraceGuard)
	k.probeOpen = cfg.Monitor.Probes.Hook(probe.HookKernelOpen)
	mon, err := monitor.New(clk, (*taskStore)(k), cfg.Monitor)
	if err != nil {
		return nil, fmt.Errorf("kernel: %w", err)
	}
	k.mon = mon
	return k, nil
}

// Clock returns the kernel's time source.
func (k *Kernel) Clock() clock.Clock { return k.clk }

// FS returns the kernel's filesystem.
func (k *Kernel) FS() *fs.FS { return k.fsys }

// Monitor returns the embedded permission monitor.
func (k *Kernel) Monitor() *monitor.Monitor { return k.mon }

// StatsSnapshot returns a copy of the kernel counters.
func (k *Kernel) StatsSnapshot() Stats {
	return Stats{
		Opens:       k.stats.opens.Load(),
		DeviceOpens: k.stats.deviceOpens.Load(),
		Denials:     k.stats.denials.Load(),
		Forks:       k.stats.forks.Load(),
		Execs:       k.stats.execs.Load(),
		Exits:       k.stats.exits.Load(),
		OpenFaults:  k.stats.openFaults.Load(),
	}
}

// --- devfs.MappingSink -------------------------------------------------

var _ devfs.MappingSink = (*Kernel)(nil)

// UpdateMapping implements devfs.MappingSink: the trusted helper tells
// the kernel that the node at path is a sensitive device of class.
func (k *Kernel) UpdateMapping(path string, class devfs.Class) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.devmap[path] = class
	return nil
}

// RemoveMapping implements devfs.MappingSink.
func (k *Kernel) RemoveMapping(path string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.devmap, path)
	return nil
}

// SensitiveClassOf returns the sensitive-device class mapped at path.
func (k *Kernel) SensitiveClassOf(path string) (devfs.Class, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	c, ok := k.devmap[path]
	return c, ok
}

// --- monitor.TaskStore --------------------------------------------------

// taskStore adapts the kernel's process table to monitor.TaskStore
// without exporting those methods on Kernel itself.
type taskStore Kernel

var _ monitor.TaskStore = (*taskStore)(nil)
var _ monitor.SpanTaskStore = (*taskStore)(nil)
var _ monitor.FastTaskStore = (*taskStore)(nil)

// InteractionStamp implements monitor.TaskStore.
func (ts *taskStore) InteractionStamp(pid int) (time.Time, bool) {
	k := (*Kernel)(ts)
	p, ok := k.table.get(pid)
	if !ok {
		return time.Time{}, false
	}
	stamp := p.slot.Time()
	if p.pid.Load() != int64(pid) {
		// The struct was recycled between the table lookup and the
		// stamp read (Process structs are type-stable); the process we
		// resolved is gone.
		return time.Time{}, false
	}
	return stamp, true
}

// SetInteractionStamp implements monitor.TaskStore with newest-wins
// semantics.
func (ts *taskStore) SetInteractionStamp(pid int, t time.Time) error {
	// The stamp changes hands without trace context: whatever span
	// minted the previous stamp no longer describes it, so adoptStamp
	// clears the span alongside the stamp.
	return ts.SetInteractionStampSpan(pid, t, telemetry.SpanContext{})
}

// SetInteractionStampSpan implements monitor.SpanTaskStore: the stamp
// and the span that minted it travel as one newest-wins unit, exactly
// like the stamp alone does. The write is a lock-free CAS-max, run
// under the pid's shard read lock: Exit's table.remove needs the write
// lock and reincarnation happens only after remove, so a stamp can
// never be adopted onto a recycled struct — the write-side counterpart
// of the read-side pid re-check.
func (ts *taskStore) SetInteractionStampSpan(pid int, t time.Time, ctx telemetry.SpanContext) error {
	k := (*Kernel)(ts)
	sh := k.table.shard(pid)
	sh.mu.RLock()
	p, ok := sh.procs[pid]
	if ok {
		p.adoptStamp(t, ctx)
	}
	sh.mu.RUnlock()
	if !ok {
		return monitor.ErrNoSuchProcess
	}
	return nil
}

// InteractionSpan implements monitor.SpanTaskStore.
func (ts *taskStore) InteractionSpan(pid int) (telemetry.SpanContext, bool) {
	k := (*Kernel)(ts)
	p, ok := k.table.get(pid)
	if !ok {
		return telemetry.SpanContext{}, false
	}
	sc := p.StampSpan()
	if p.pid.Load() != int64(pid) {
		return telemetry.SpanContext{}, false
	}
	return sc, true
}

// PermissionsDisabled implements monitor.TaskStore: a process being
// ptraced has all sensitive permissions disabled while the guard is on.
func (ts *taskStore) PermissionsDisabled(pid int) bool {
	k := (*Kernel)(ts)
	if !k.ptraceGuard.Load() {
		return false
	}
	p, ok := k.table.get(pid)
	return ok && p.tracedBy.Load() != 0 && p.pid.Load() == int64(pid)
}

// InteractionView implements monitor.FastTaskStore: everything a
// permission decision needs in one shard read-lock plus a handful of
// atomic loads. The final pid re-check is the type-stable-memory
// discipline: if the struct was reincarnated as a different process
// between the lookup and the loads, the new pid (stored first during
// reincarnation, so seq-cst ordering guarantees any new-incarnation
// data implies a visible new pid) turns the read into a miss.
func (ts *taskStore) InteractionView(pid int) (time.Time, telemetry.SpanContext, bool, bool) {
	k := (*Kernel)(ts)
	p, ok := k.table.get(pid)
	if !ok {
		return time.Time{}, telemetry.SpanContext{}, false, false
	}
	disabled := k.ptraceGuard.Load() && p.tracedBy.Load() != 0
	stamp := p.slot.Time()
	sc := p.StampSpan()
	if p.pid.Load() != int64(pid) {
		return time.Time{}, telemetry.SpanContext{}, false, false
	}
	return stamp, sc, disabled, true
}

// --- introspection (netlink authentication) -----------------------------

// ExecutablePath returns the filesystem path pid's code was loaded from,
// mirroring the kernel's view of the process's memory maps.
func (k *Kernel) ExecutablePath(pid int) (string, error) {
	p, err := k.Process(pid)
	if err != nil {
		return "", err
	}
	return p.Executable(), nil
}

// CredOf returns pid's credentials.
func (k *Kernel) CredOf(pid int) (fs.Cred, error) {
	p, err := k.Process(pid)
	if err != nil {
		return fs.Cred{}, err
	}
	return p.Cred(), nil
}

// AuthenticateTrustedBinary reports nil iff pid's executable is exactly
// wellKnownPath and that file exists and is owned by the superuser.
// This is the paper's netlink peer-authentication procedure: the kernel
// introspects the userspace process's mapped executable rather than
// running a cryptographic handshake.
func (k *Kernel) AuthenticateTrustedBinary(pid int, wellKnownPath string) error {
	exe, err := k.ExecutablePath(pid)
	if err != nil {
		return fmt.Errorf("authenticate pid %d: %w", pid, err)
	}
	if exe != wellKnownPath {
		return fmt.Errorf("authenticate pid %d: executable %q is not %q", pid, exe, wellKnownPath)
	}
	st, err := k.fsys.Stat(exe)
	if err != nil {
		return fmt.Errorf("authenticate pid %d: stat executable: %w", pid, err)
	}
	if st.Owner.UID != 0 {
		return fmt.Errorf("authenticate pid %d: executable %q not owned by superuser", pid, exe)
	}
	return nil
}

// --- proc toggle ---------------------------------------------------------

// SetPtraceGuard toggles the ptrace permission guard. Only root may
// flip it; this models the proc filesystem node from §IV-B.
func (k *Kernel) SetPtraceGuard(cred fs.Cred, enabled bool) error {
	if cred.UID != 0 {
		return fmt.Errorf("set ptrace guard: %w", ErrNotPermitted)
	}
	k.ptraceGuard.Store(enabled)
	return nil
}

// PtraceGuardEnabled reports the guard state.
func (k *Kernel) PtraceGuardEnabled() bool {
	return k.ptraceGuard.Load()
}

// --- process table access ------------------------------------------------

// Process returns the live process with the given PID.
func (k *Kernel) Process(pid int) (*Process, error) {
	p, ok := k.table.get(pid)
	if !ok {
		return nil, fmt.Errorf("pid %d: %w", pid, ErrNoSuchProcess)
	}
	return p, nil
}

// PIDs returns the live PIDs, sorted.
func (k *Kernel) PIDs() []int {
	return k.table.pids()
}
