package kernel

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"overhaul/internal/fs"
)

func TestProcStatusRendersOverhaulStamp(t *testing.T) {
	e := newEnv(t, enforcing())
	p := e.spawnUser(t, "editor")

	out, err := e.k.ReadProc("/proc/" + itoa(p.PID()) + "/status")
	if err != nil {
		t.Fatalf("ReadProc: %v", err)
	}
	s := string(out)
	for _, want := range []string{"Name:\teditor", "State:\tR (running)", "OverhaulStamp:\t-"} {
		if !strings.Contains(s, want) {
			t.Fatalf("status missing %q:\n%s", want, s)
		}
	}

	e.interact(t, p)
	out, err = e.k.ReadProc("/proc/" + itoa(p.PID()) + "/status")
	if err != nil {
		t.Fatalf("ReadProc: %v", err)
	}
	if strings.Contains(string(out), "OverhaulStamp:\t-") {
		t.Fatalf("stamp not rendered after interaction:\n%s", out)
	}
}

func TestProcComm(t *testing.T) {
	e := newEnv(t, enforcing())
	p := e.spawnUser(t, "firefox")
	out, err := e.k.ReadProc("/proc/" + itoa(p.PID()) + "/comm")
	if err != nil || string(out) != "firefox\n" {
		t.Fatalf("comm = %q, %v", out, err)
	}
}

func TestProcListing(t *testing.T) {
	e := newEnv(t, enforcing())
	a := e.spawnUser(t, "a")
	b := e.spawnUser(t, "b")
	out, err := e.k.ReadProc("/proc")
	if err != nil {
		t.Fatalf("ReadProc: %v", err)
	}
	for _, p := range []*Process{a, b} {
		if !strings.Contains(string(out), itoa(p.PID())+"\n") {
			t.Fatalf("listing missing pid %d:\n%s", p.PID(), out)
		}
	}
}

func TestProcPtraceGuardNode(t *testing.T) {
	e := newEnv(t, enforcing())
	out, err := e.k.ReadProc(ProcPtraceGuardPath)
	if err != nil || string(out) != "1\n" {
		t.Fatalf("guard node = %q, %v; want 1", out, err)
	}
	// Non-root writes rejected.
	if err := e.k.WriteProc(ProcPtraceGuardPath, []byte("0"), fs.Cred{UID: 1000}); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("non-root write = %v", err)
	}
	// Root toggles.
	if err := e.k.WriteProc(ProcPtraceGuardPath, []byte("0\n"), fs.Root); err != nil {
		t.Fatalf("root write: %v", err)
	}
	out, err = e.k.ReadProc(ProcPtraceGuardPath)
	if err != nil || string(out) != "0\n" {
		t.Fatalf("guard node = %q, %v; want 0", out, err)
	}
	// Garbage rejected.
	if err := e.k.WriteProc(ProcPtraceGuardPath, []byte("maybe"), fs.Root); err == nil {
		t.Fatal("garbage accepted")
	}
	// Other paths are not writable.
	if err := e.k.WriteProc("/proc/1/status", []byte("1"), fs.Root); !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("write to status = %v", err)
	}
}

func TestProcBadPaths(t *testing.T) {
	e := newEnv(t, enforcing())
	for _, p := range []string{"/proc/999/status", "/proc/abc/status", "/proc/1/maps", "/etc/passwd", "/proc/1/2/3"} {
		if _, err := e.k.ReadProc(p); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("ReadProc(%s) = %v, want ErrNotExist", p, err)
		}
	}
}

func TestProcStatusShowsTracer(t *testing.T) {
	e := newEnv(t, enforcing())
	parent := e.spawnUser(t, "dbg")
	child, err := parent.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if err := parent.PtraceAttach(child); err != nil {
		t.Fatalf("PtraceAttach: %v", err)
	}
	out, err := e.k.ReadProc("/proc/" + itoa(child.PID()) + "/status")
	if err != nil {
		t.Fatalf("ReadProc: %v", err)
	}
	if !strings.Contains(string(out), "TracerPid:\t"+itoa(parent.PID())) {
		t.Fatalf("status missing tracer:\n%s", out)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
