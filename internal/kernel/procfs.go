package kernel

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"overhaul/internal/fs"
)

// The paper's prototype exposes its ptrace-guard switch "through a proc
// filesystem node" (§IV-B). This file implements a synthetic procfs
// view: path-addressed reads over live kernel state plus the one
// writable node, with superuser-only writes — no state is duplicated
// into the filesystem tree.

// Proc paths.
const (
	ProcPtraceGuardPath = "/proc/sys/overhaul/ptrace_guard"
	procPrefix          = "/proc/"
)

// ReadProc serves a synthetic procfs read. Supported paths:
//
//	/proc/sys/overhaul/ptrace_guard  -> "1\n" or "0\n"
//	/proc/<pid>/status               -> task status incl. the Overhaul stamp
//	/proc/<pid>/comm                 -> process name
//	/proc                            -> directory listing of live PIDs
func (k *Kernel) ReadProc(path string) ([]byte, error) {
	switch {
	case path == ProcPtraceGuardPath:
		if k.PtraceGuardEnabled() {
			return []byte("1\n"), nil
		}
		return []byte("0\n"), nil

	case path == "/proc":
		pids := k.PIDs()
		var b strings.Builder
		for _, pid := range pids {
			fmt.Fprintf(&b, "%d\n", pid)
		}
		return []byte(b.String()), nil

	case strings.HasPrefix(path, procPrefix):
		rest := strings.TrimPrefix(path, procPrefix)
		parts := strings.Split(rest, "/")
		if len(parts) != 2 {
			return nil, fmt.Errorf("read %s: %w", path, fs.ErrNotExist)
		}
		pid, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", path, fs.ErrNotExist)
		}
		p, err := k.Process(pid)
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", path, fs.ErrNotExist)
		}
		switch parts[1] {
		case "comm":
			return []byte(p.Name() + "\n"), nil
		case "status":
			return []byte(k.procStatus(p)), nil
		default:
			return nil, fmt.Errorf("read %s: %w", path, fs.ErrNotExist)
		}

	default:
		return nil, fmt.Errorf("read %s: %w", path, fs.ErrNotExist)
	}
}

// procStatus renders the /proc/<pid>/status analogue, including the
// field Overhaul adds to the task struct.
func (k *Kernel) procStatus(p *Process) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Name:\t%s\n", p.Name())
	fmt.Fprintf(&b, "Pid:\t%d\n", p.PID())
	fmt.Fprintf(&b, "PPid:\t%d\n", p.PPID())
	fmt.Fprintf(&b, "Uid:\t%d\n", p.Cred().UID)
	fmt.Fprintf(&b, "Gid:\t%d\n", p.Cred().GID)
	state := "R (running)"
	if p.State() != StateRunning {
		state = "X (dead)"
	}
	fmt.Fprintf(&b, "State:\t%s\n", state)
	fmt.Fprintf(&b, "TracerPid:\t%d\n", p.tracedBy.Load())
	stamp := p.InteractionStamp()
	if stamp.IsZero() {
		b.WriteString("OverhaulStamp:\t-\n")
	} else {
		fmt.Fprintf(&b, "OverhaulStamp:\t%s\n", stamp.Format("15:04:05.000000"))
	}
	children := p.Children()
	sort.Ints(children)
	strs := make([]string, len(children))
	for i, c := range children {
		strs[i] = strconv.Itoa(c)
	}
	fmt.Fprintf(&b, "Children:\t%s\n", strings.Join(strs, " "))
	return b.String()
}

// WriteProc serves a synthetic procfs write. The only writable node is
// the ptrace-guard toggle, and only for the superuser ("1"/"0",
// whitespace tolerated).
func (k *Kernel) WriteProc(path string, data []byte, cred fs.Cred) error {
	if path != ProcPtraceGuardPath {
		return fmt.Errorf("write %s: %w", path, fs.ErrPermission)
	}
	switch strings.TrimSpace(string(data)) {
	case "1":
		return k.SetPtraceGuard(cred, true)
	case "0":
		return k.SetPtraceGuard(cred, false)
	default:
		return fmt.Errorf("write %s: invalid value %q", path, data)
	}
}
