package ipc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/faultinject"
)

// DefaultShmWait is the paper's wait-list duration: after a simulated
// page fault propagates stamps, the mapping's permissions stay restored
// for this long before being revoked again. 500 ms "yielded a good
// performance-usability trade-off" (§IV-B) — it must stay well below the
// 2 s interaction expiry or propagation windows would be missed.
const DefaultShmWait = 500 * time.Millisecond

// PageSize is the simulated page size.
const PageSize = 4096

// ErrOutOfRange is returned for accesses beyond the segment.
var ErrOutOfRange = errors.New("ipc: shared memory access out of range")

// ShmStats counts fault-path versus fast-path accesses.
type ShmStats struct {
	Faults       uint64
	FastAccesses uint64
	// TimerMisfires counts injected wait-list timer faults. A misfire
	// ends the disarm window early; the access re-faults and
	// re-propagates stamps instead of trusting the stale window.
	TimerMisfires uint64
}

// SharedMem is a POSIX (shm_open) or SysV (shmget) shared-memory
// segment. Plain memory loads and stores cannot be intercepted above
// the hardware, so Overhaul revokes page permissions and catches the
// resulting faults; this type simulates that machinery: the first access
// through a mapping takes the "fault" path (stamp propagation in both
// directions, then permissions restored), and subsequent accesses within
// the wait-list window take the uninterrupted fast path.
//
// A nil Stamps store creates an *unguarded* segment — the vanilla-kernel
// baseline configuration used by the Table I benchmark.
type SharedMem struct {
	st   Stamps
	clk  clock.Clock
	wait time.Duration

	// ts synchronizes itself with atomics; it is not guarded by mu.
	ts carrier

	mu       sync.Mutex
	interval int // guard-check amortization (accesses per clock read)
	data     []byte
	removed  bool
	stats    ShmStats
	faults   faultinject.Hook
}

// NewSharedMem creates a segment of the given number of pages. wait <= 0
// selects DefaultShmWait; wait is the re-revocation delay.
func NewSharedMem(st Stamps, clk clock.Clock, pages int, wait time.Duration) (*SharedMem, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("ipc: shm size %d pages invalid", pages)
	}
	if clk == nil {
		return nil, errors.New("ipc: nil clock")
	}
	if wait <= 0 {
		wait = DefaultShmWait
	}
	return &SharedMem{
		st:       st,
		clk:      clk,
		wait:     wait,
		interval: 1,
		data:     make([]byte, pages*PageSize),
	}, nil
}

// SetCheckInterval amortizes the simulated guard over n accesses: the
// wait-list clock is consulted only every n-th access on the fast path.
// In the real system fast-path accesses are raw memory operations with
// zero overhead (page permissions are restored); the per-access check is
// purely a simulation artifact, and the benchmark harness raises the
// interval to keep that artifact out of the measured overhead. With
// n > 1 the FastAccesses counter remains exact but the wait-window edge
// is detected up to n-1 accesses late. n < 1 is treated as 1 (exact
// semantics, the default used by the tests).
func (s *SharedMem) SetCheckInterval(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.interval = n
}

// SetFaultHook installs the fault-injection hook consulted at
// PointShmTimer whenever a fast-path access relies on the wait-list
// window. A nil hook disables injection.
func (s *SharedMem) SetFaultHook(hook faultinject.Hook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = hook
}

// Size returns the segment size in bytes.
func (s *SharedMem) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Remove marks the segment destroyed (shmctl IPC_RMID / shm_unlink).
// Existing mappings fail afterwards, which is stricter than Linux but
// sufficient for the simulation.
func (s *SharedMem) Remove() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.removed {
		return ErrClosedPipe
	}
	s.removed = true
	return nil
}

// StatsSnapshot returns the fault/fast access counters.
func (s *SharedMem) StatsSnapshot() ShmStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// EmbeddedStamp exposes the segment's carried timestamp.
func (s *SharedMem) EmbeddedStamp() time.Time { return s.ts.stampValue() }

// Map attaches the segment into pid's address space (mmap/shmat) and
// returns the mapping through which all accesses flow. The mapping
// starts with permissions revoked, so the first access faults.
func (s *SharedMem) Map(pid int) *Mapping {
	return &Mapping{shm: s, pid: pid}
}

// Mapping is one process's attached view of a shared-memory segment
// (the vm_area_struct analogue carrying the revocation state). Its
// guard state is protected by the segment mutex, which every access
// takes anyway.
type Mapping struct {
	shm *SharedMem
	pid int

	// Guarded by shm.mu.
	disarmedUntil time.Time // while now < disarmedUntil: fast path
	skip          int       // remaining amortized unchecked accesses
}

// PID returns the owning process.
func (m *Mapping) PID() int { return m.pid }

// accessLocked runs the guard with shm.mu held and reports whether the
// access faulted (stamp propagation then happens outside the lock).
func (m *Mapping) accessLocked() bool {
	s := m.shm
	if s.st == nil {
		return false // unguarded baseline segment
	}
	if m.skip > 0 {
		m.skip--
		return false
	}
	// Account the amortized window consumed since the last check; with
	// interval 1 this adds zero and the counters stay exact.
	s.stats.FastAccesses += uint64(s.interval - 1)
	m.skip = s.interval - 1

	now := s.clk.Now()
	if now.Before(m.disarmedUntil) {
		if faultinject.Eval(s.faults, faultinject.PointShmTimer).Injected() {
			// The wait-list timer misfired: the disarm window cannot
			// be trusted. Fail closed — take the fault path and
			// re-propagate stamps rather than skip propagation.
			s.stats.TimerMisfires++
			m.disarmedUntil = now.Add(s.wait)
			s.stats.Faults++
			return true
		}
		s.stats.FastAccesses++
		return false
	}
	m.disarmedUntil = now.Add(s.wait)
	s.stats.Faults++
	return true
}

// Write stores data at off.
func (m *Mapping) Write(off int, data []byte) error {
	s := m.shm
	s.mu.Lock()
	if s.removed {
		s.mu.Unlock()
		return fmt.Errorf("shm write: %w", ErrClosedPipe)
	}
	if off < 0 || off+len(data) > len(s.data) {
		s.mu.Unlock()
		return fmt.Errorf("shm write [%d,%d): %w", off, off+len(data), ErrOutOfRange)
	}
	fault := m.accessLocked()
	copy(s.data[off:], data)
	s.mu.Unlock()

	if fault {
		// A fault cannot tell a load from a store, so propagate in
		// both directions (§IV-B).
		s.ts.onAccess(s.st, m.pid)
	}
	return nil
}

// Read loads n bytes from off.
func (m *Mapping) Read(off, n int) ([]byte, error) {
	s := m.shm
	s.mu.Lock()
	if s.removed {
		s.mu.Unlock()
		return nil, fmt.Errorf("shm read: %w", ErrClosedPipe)
	}
	if off < 0 || n < 0 || off+n > len(s.data) {
		s.mu.Unlock()
		return nil, fmt.Errorf("shm read [%d,%d): %w", off, off+n, ErrOutOfRange)
	}
	fault := m.accessLocked()
	out := make([]byte, n)
	copy(out, s.data[off:off+n])
	s.mu.Unlock()

	if fault {
		s.ts.onAccess(s.st, m.pid)
	}
	return out, nil
}
