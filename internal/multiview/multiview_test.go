package multiview

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunSmallMatrix runs the real matrix at a tiny op count and
// checks every (benchmark, mode) slot was measured.
func TestRunSmallMatrix(t *testing.T) {
	rep, err := Run(Options{K: 1, Ops: 300})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.K != 1 || rep.Ops != 300 {
		t.Fatalf("options not recorded: K=%d Ops=%d", rep.K, rep.Ops)
	}
	if len(rep.Rows) != len(benchmarks()) {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), len(benchmarks()))
	}
	seen := map[string]bool{}
	for _, r := range rep.Rows {
		if seen[r.Name] {
			t.Errorf("duplicate row %q", r.Name)
		}
		seen[r.Name] = true
		for _, m := range []Measurement{r.Off, r.Idle, r.Match} {
			if m.NsPerOp <= 0 {
				t.Errorf("%s: unmeasured slot %+v", r.Name, m)
			}
		}
	}
}

// TestBenchJSONShape checks the JSON document is exactly what
// overhaul-benchjson -check accepts: Benchmark-prefixed keys, positive
// ns/op, non-negative allocs.
func TestBenchJSONShape(t *testing.T) {
	rep := &Report{K: 1, Ops: 10, Rows: []Row{
		{Name: "Decide",
			Off:   Measurement{NsPerOp: 100, AllocsPerOp: 0},
			Idle:  Measurement{NsPerOp: 105, AllocsPerOp: 0},
			Match: Measurement{NsPerOp: 180, AllocsPerOp: 2}},
	}}
	out, err := rep.BenchJSON()
	if err != nil {
		t.Fatal(err)
	}
	var entries map[string]Measurement
	if err := json.Unmarshal(out, &entries); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	for name, e := range entries {
		if !strings.HasPrefix(name, "BenchmarkMultiviewDecide/mode=") {
			t.Errorf("bad key %q", name)
		}
		if e.NsPerOp <= 0 || e.AllocsPerOp < 0 {
			t.Errorf("%s: bad entry %+v", name, e)
		}
	}
	if entries["BenchmarkMultiviewDecide/mode=match"].AllocsPerOp != 2 {
		t.Error("match-mode allocs not preserved")
	}
}

// TestGateBudgetAndFloor pins the two-condition gate: a row fails only
// when it exceeds the relative budget AND the absolute floor.
func TestGateBudgetAndFloor(t *testing.T) {
	rep := &Report{Rows: []Row{
		// 20% over but only +2 ns: under the floor, passes.
		{Name: "Tiny", Off: Measurement{NsPerOp: 10}, Idle: Measurement{NsPerOp: 12}},
		// +50 ns but only 5%: under the budget, passes.
		{Name: "Big", Off: Measurement{NsPerOp: 1000}, Idle: Measurement{NsPerOp: 1050}},
		// 15% and +30 ns: fails both conditions.
		{Name: "Bad", Off: Measurement{NsPerOp: 200}, Idle: Measurement{NsPerOp: 230}},
	}}
	fails := rep.Gate(DefaultBudgetPct, DefaultFloorNs)
	if len(fails) != 1 {
		t.Fatalf("got %d failures %v, want 1", len(fails), fails)
	}
	if !strings.Contains(fails[0], "Bad") || !strings.Contains(fails[0], "+15.0%") {
		t.Errorf("failure line %q does not name the bad row", fails[0])
	}
	if rep.Rows[0].OverBudget(DefaultBudgetPct, DefaultFloorNs) {
		t.Error("Tiny should pass: over budget but under the absolute floor")
	}
	if rep.Rows[1].OverBudget(DefaultBudgetPct, DefaultFloorNs) {
		t.Error("Big should pass: over the floor but under the budget")
	}
}

// TestMeasurementMerge pins min-of-K folding with the zero sentinel.
func TestMeasurementMerge(t *testing.T) {
	var m Measurement
	m.merge(Measurement{NsPerOp: 120, AllocsPerOp: 3})
	if m.NsPerOp != 120 || m.AllocsPerOp != 3 {
		t.Fatalf("first merge should copy: %+v", m)
	}
	m.merge(Measurement{NsPerOp: 110, AllocsPerOp: 5})
	if m.NsPerOp != 110 {
		t.Errorf("ns not folded to min: %v", m.NsPerOp)
	}
	if m.AllocsPerOp != 3 {
		t.Errorf("allocs not folded to min: %v", m.AllocsPerOp)
	}
}

// TestHTMLReport checks the page renders with rows and the gate
// verdict.
func TestHTMLReport(t *testing.T) {
	rep := &Report{K: 3, Ops: 1000, Rows: []Row{
		{Name: "Decide", Off: Measurement{NsPerOp: 100}, Idle: Measurement{NsPerOp: 103}, Match: Measurement{NsPerOp: 150}},
		{Name: "Bad", Off: Measurement{NsPerOp: 200}, Idle: Measurement{NsPerOp: 260}, Match: Measurement{NsPerOp: 300}},
	}}
	out, err := rep.HTML(DefaultBudgetPct, DefaultFloorNs)
	if err != nil {
		t.Fatal(err)
	}
	page := string(out)
	for _, want := range []string{"Decide", "Bad", "Gate failures", `class="fail"`, "multiview"} {
		if !strings.Contains(page, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{ModeOff: "off", ModeIdle: "idle", ModeMatch: "match"} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}
