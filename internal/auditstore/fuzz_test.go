package auditstore_test

import (
	"bytes"
	"testing"
	"time"

	"overhaul/internal/auditstore"
)

// FuzzSegmentDecode pins the codec's safety contract: DecodeSegment
// never panics on arbitrary bytes, never reads past its input, and is
// idempotent — re-encoding whatever it decoded and decoding again
// yields the same records. Torn, bit-flipped, and random inputs all
// land here.
func FuzzSegmentDecode(f *testing.F) {
	// Seeds: valid streams, a torn tail, a flipped CRC, random junk.
	var valid []byte
	for i := 0; i < 5; i++ {
		r := mkRecord(i)
		r.Seq = uint64(i + 1)
		line, err := auditstore.EncodeRecord(r)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		valid = append(valid, line...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-7])           // torn payload
	f.Add(valid[:9])                      // torn header
	f.Add([]byte{})                       // empty
	f.Add([]byte("not a segment at all")) // junk
	f.Add([]byte("00000002ffffffff{}\n")) // crc mismatch
	flipped := append([]byte(nil), valid...)
	flipped[20] ^= 0x40
	f.Add(flipped) // bit rot mid-payload

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, trunc := auditstore.DecodeSegment(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if trunc == nil && consumed != len(data) {
			t.Fatalf("clean decode consumed %d of %d bytes", consumed, len(data))
		}
		if trunc != nil {
			if trunc.Offset != consumed {
				t.Fatalf("truncation offset %d != consumed %d", trunc.Offset, consumed)
			}
			if trunc.Reason == "" {
				t.Fatalf("truncation without a reason")
			}
		}
		// Idempotence: what decoded once decodes identically again.
		var reenc []byte
		for _, r := range recs {
			line, err := auditstore.EncodeRecord(r)
			if err != nil {
				// A decoded record always re-encodes unless its payload
				// held values JSON can parse but not marshal (times
				// outside year range); those can't round-trip.
				t.Skipf("decoded record does not re-encode: %v", err)
			}
			reenc = append(reenc, line...)
		}
		again, consumed2, trunc2 := auditstore.DecodeSegment(reenc)
		if trunc2 != nil {
			t.Fatalf("re-encoded stream truncated at %d: %s", trunc2.Offset, trunc2.Reason)
		}
		if consumed2 != len(reenc) || len(again) != len(recs) {
			t.Fatalf("re-decode: %d records %d bytes, want %d records %d bytes",
				len(again), consumed2, len(recs), len(reenc))
		}
	})
}

// FuzzRecordRoundTrip pins the encode→decode identity for every valid
// record: whatever fields a record carries, one framed line comes back
// as exactly that record.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), int64(0), uint64(0), 100, "open_device", "grant", "interaction 1s ago", int64(0), false)
	f.Add(uint64(1<<40), int64(1456822800), uint64(7), -5, "", "deny", "reason with \"quotes\" and \n newline", int64(-12345), true)
	f.Add(uint64(0), int64(1), uint64(1), 0, "читать", "?", "", int64(1), false)

	f.Fuzz(func(t *testing.T, seq uint64, tsec int64, session uint64, pid int, op, verdict, reason string, stampSec int64, degraded bool) {
		r := auditstore.Record{
			Seq:      seq,
			Time:     time.Unix(tsec%(1<<33), 0).UTC(),
			Session:  session,
			PID:      pid,
			Op:       op,
			Verdict:  verdict,
			Reason:   reason,
			Stamp:    time.Unix(stampSec%(1<<33), 0).UTC(),
			Degraded: degraded,
		}
		line, err := auditstore.EncodeRecord(r)
		if err != nil {
			// Strings JSON cannot carry (invalid UTF-8 is replaced, not
			// rejected) don't error; only oversized payloads do.
			if len(op)+len(verdict)+len(reason) < auditstore.MaxPayload/2 {
				t.Fatalf("encode rejected a plausible record: %v", err)
			}
			return
		}
		recs, consumed, trunc := auditstore.DecodeSegment(line)
		if trunc != nil || consumed != len(line) || len(recs) != 1 {
			t.Fatalf("decode of one line: %d records, %d/%d bytes, trunc=%v", len(recs), consumed, len(line), trunc)
		}
		got := recs[0]
		// Invalid UTF-8 input is sanitised to U+FFFD by the JSON
		// encoder (escaped on the first pass, literal afterwards), so
		// the invariant is convergence: from the first decode on,
		// encode→decode is the identity and the encoding is stable.
		line2, err := auditstore.EncodeRecord(got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		recs2, consumed2, trunc2 := auditstore.DecodeSegment(line2)
		if trunc2 != nil || consumed2 != len(line2) || len(recs2) != 1 {
			t.Fatalf("re-decode of one line: %d records, %d/%d bytes, trunc=%v", len(recs2), consumed2, len(line2), trunc2)
		}
		if recs2[0] != got {
			t.Fatalf("decoded record not a fixed point:\n first %+v\nsecond %+v", got, recs2[0])
		}
		line3, err := auditstore.EncodeRecord(recs2[0])
		if err != nil {
			t.Fatalf("third encode: %v", err)
		}
		if !bytes.Equal(line2, line3) {
			t.Fatalf("encoding did not converge:\n second %q\n third %q", line2, line3)
		}
		if got.Seq != r.Seq || got.PID != r.PID || got.Degraded != r.Degraded ||
			!got.Time.Equal(r.Time) || !got.Stamp.Equal(r.Stamp) || got.Session != r.Session {
			t.Fatalf("scalar fields diverged: got %+v want %+v", got, r)
		}
	})
}
