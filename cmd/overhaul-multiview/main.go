// Command overhaul-multiview runs the probe layer's libMicro-style
// multiview overhead report: every probe-hooked hot path measured K
// times in three modes (probes off, attached-idle, attached-matching
// with full telemetry), minima compared, and — with -gate — the
// off→idle overhead held to the issue's 10% budget per benchmark.
//
// Usage:
//
//	overhaul-multiview [-k 5] [-ops 20000] [-json FILE] [-html FILE]
//	                   [-gate] [-budget 10] [-floor 10]
//
// The -json document is compatible with overhaul-benchjson -check.
package main

import (
	"flag"
	"fmt"
	"os"

	"overhaul/internal/multiview"
)

func main() {
	var (
		k      = flag.Int("k", multiview.DefaultK, "repetitions per (benchmark, mode); minimum wins")
		ops    = flag.Int("ops", multiview.DefaultOps, "operations per repetition")
		jsonP  = flag.String("json", "", "write benchjson-compatible results to this file")
		htmlP  = flag.String("html", "", "write the HTML comparison report to this file")
		gate   = flag.Bool("gate", false, "exit 1 if any benchmark's off→idle overhead exceeds the budget")
		budget = flag.Float64("budget", multiview.DefaultBudgetPct, "off→idle overhead budget in percent")
		floor  = flag.Float64("floor", multiview.DefaultFloorNs, "absolute ns/op floor below which the gate never fails")
	)
	flag.Parse()

	if err := run(*k, *ops, *jsonP, *htmlP, *gate, *budget, *floor); err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-multiview:", err)
		os.Exit(1)
	}
}

func run(k, ops int, jsonPath, htmlPath string, gate bool, budget, floor float64) error {
	rep, err := multiview.Run(multiview.Options{K: k, Ops: ops})
	if err != nil {
		return err
	}
	fmt.Print(rep.Text())

	if jsonPath != "" {
		out, err := rep.BenchJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if htmlPath != "" {
		out, err := rep.HTML(budget, floor)
		if err != nil {
			return err
		}
		if err := os.WriteFile(htmlPath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", htmlPath)
	}
	if gate {
		if fails := rep.Gate(budget, floor); len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintln(os.Stderr, "GATE FAIL:", f)
			}
			return fmt.Errorf("%d of %d benchmarks over the %.0f%% off→idle budget", len(fails), len(rep.Rows), budget)
		}
		fmt.Printf("gate ok: all %d benchmarks within the %.0f%% off→idle budget\n", len(rep.Rows), budget)
	}
	return nil
}
