package apps

import (
	"errors"
	"fmt"
	"sync"

	"overhaul/internal/core"
	"overhaul/internal/ipc"
	"overhaul/internal/kernel"
)

// The paper (§IV-B) notes that higher-level IPC mechanisms built on OS
// primitives — D-Bus being the canonical example — are *automatically*
// covered by Overhaul's stamp propagation, because every message
// physically traverses a UNIX domain socket the kernel interposes on.
// Bus here is a miniature D-Bus daemon that proves the claim: a broker
// process owns one socket pair per connected client and routes messages
// between them; interaction stamps hop client → daemon → client with no
// bus-specific Overhaul code anywhere.

// Bus errors.
var (
	ErrNameTaken   = errors.New("dbus: name already owned")
	ErrNoSuchName  = errors.New("dbus: no such name")
	ErrNotAttached = errors.New("dbus: client not attached")
)

// Bus is the message-bus daemon.
type Bus struct {
	sys  *core.System
	proc *kernel.Process

	mu      sync.Mutex
	clients map[string]*BusClient // by well-known name
}

// BusClient is one connection to the bus.
type BusClient struct {
	bus  *Bus
	proc *kernel.Process
	name string
	// toDaemon/fromDaemon are the client-side and daemon-side ends of
	// the connection's socket pair.
	clientEnd *ipc.SocketEndpoint
	daemonEnd *ipc.SocketEndpoint
}

// Message is one routed bus message.
type Message struct {
	Sender string
	Dest   string
	Body   []byte
}

// NewBus starts the bus daemon as a headless system process.
func NewBus(sys *core.System) (*Bus, error) {
	proc, err := sys.LaunchHeadless("dbus-daemon")
	if err != nil {
		return nil, fmt.Errorf("dbus: %w", err)
	}
	return &Bus{sys: sys, proc: proc, clients: make(map[string]*BusClient)}, nil
}

// Daemon returns the bus daemon process.
func (b *Bus) Daemon() *kernel.Process { return b.proc }

// Attach connects a process to the bus under a well-known name,
// allocating the connection's socket pair.
func (b *Bus) Attach(proc *kernel.Process, name string) (*BusClient, error) {
	if name == "" {
		return nil, errors.New("dbus: empty name")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, taken := b.clients[name]; taken {
		return nil, fmt.Errorf("%w: %s", ErrNameTaken, name)
	}
	clientEnd, daemonEnd := b.sys.Kernel.NewSocketPair().Ends()
	c := &BusClient{bus: b, proc: proc, name: name, clientEnd: clientEnd, daemonEnd: daemonEnd}
	b.clients[name] = c
	return c, nil
}

// Send routes a message from this client to the named destination: the
// client writes to its socket, the daemon reads it (adopting any fresher
// stamp), then writes it to the destination's socket (embedding the
// daemon's stamp), where the destination will read it.
func (c *BusClient) Send(dest string, body []byte) error {
	b := c.bus
	b.mu.Lock()
	target, ok := b.clients[dest]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchName, dest)
	}

	// Client half: message enters the client's connection socket.
	payload := append([]byte(c.name+"\x00"+dest+"\x00"), body...)
	if err := c.clientEnd.Send(c.proc.PID(), payload); err != nil {
		return fmt.Errorf("dbus send: %w", err)
	}
	// Daemon half: the broker process shuttles it across — this is
	// where stamps hop connection to connection.
	msg, err := c.daemonEnd.Recv(b.proc.PID())
	if err != nil {
		return fmt.Errorf("dbus route: %w", err)
	}
	if err := target.daemonEnd.Send(b.proc.PID(), msg); err != nil {
		return fmt.Errorf("dbus route: %w", err)
	}
	return nil
}

// Recv delivers the next message addressed to this client.
func (c *BusClient) Recv() (Message, error) {
	raw, err := c.clientEnd.Recv(c.proc.PID())
	if err != nil {
		return Message{}, fmt.Errorf("dbus recv: %w", err)
	}
	var sender, dest string
	rest := raw
	for i, part := 0, 0; part < 2; i++ {
		if i >= len(rest) {
			return Message{}, errors.New("dbus recv: malformed message")
		}
		if rest[i] == 0 {
			if part == 0 {
				sender = string(rest[:i])
			} else {
				dest = string(rest[:i])
			}
			rest = rest[i+1:]
			i = -1
			part++
		}
	}
	return Message{Sender: sender, Dest: dest, Body: rest}, nil
}

// Names returns the currently owned well-known names.
func (b *Bus) Names() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.clients))
	for n := range b.clients {
		out = append(out, n)
	}
	return out
}
