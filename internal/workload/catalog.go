// Package workload drives the paper's application-level evaluations:
// the §V-C applicability & false-positive assessment over a pool of
// real-world application behaviours, and the §V-D 21-day empirical
// experiment pitting spying malware against a protected and an
// unprotected machine.
package workload

// Category classifies an application's resource behaviour, matching the
// §V-C pool composition.
type Category int

// Categories.
const (
	CatVideoConf Category = iota + 1
	CatAudioEditor
	CatVideoRecorder
	CatAudioRecorder
	CatScreenshot
	CatScreencast
	CatBrowser
	CatClipboard
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatVideoConf:
		return "video conferencing"
	case CatAudioEditor:
		return "audio/video editor"
	case CatVideoRecorder:
		return "video recorder"
	case CatAudioRecorder:
		return "audio recorder"
	case CatScreenshot:
		return "screenshot utility"
	case CatScreencast:
		return "screencasting tool"
	case CatBrowser:
		return "web browser"
	case CatClipboard:
		return "clipboard application"
	default:
		return "unknown"
	}
}

// AppSpec describes one pool entry.
type AppSpec struct {
	Name     string   `json:"name"`
	Category Category `json:"category"`
	// AutostartProbe reproduces the Skype quirk: the app touches the
	// camera on startup, before any interaction.
	AutostartProbe bool `json:"autostartProbe,omitempty"`
	// DelayedShot marks screenshot tools offering a delayed-capture
	// option (the documented Overhaul limitation).
	DelayedShot bool `json:"delayedShot,omitempty"`
}

// DevicePool returns the 58-application §V-C pool: video conferencing
// tools, audio/video editors, recorders, screenshot utilities,
// screencasting tools, and browsers running web video chat. Names follow
// the paper's examples (Skype, Jitsi, Audacity, Kwave, Cheese, ZArt,
// Shutter, GNOME Screenshot, Istanbul, recordMyDesktop, Firefox,
// Chrome) padded with representative package names from the same
// repository searches.
func DevicePool() []AppSpec {
	specs := []AppSpec{
		{Name: "skype", Category: CatVideoConf, AutostartProbe: true},
		{Name: "jitsi", Category: CatVideoConf},
		{Name: "linphone", Category: CatVideoConf},
		{Name: "ekiga", Category: CatVideoConf},
		{Name: "mumble", Category: CatVideoConf},
		{Name: "empathy", Category: CatVideoConf},
		{Name: "pidgin", Category: CatVideoConf},
		{Name: "hangouts-app", Category: CatVideoConf},

		{Name: "audacity", Category: CatAudioEditor},
		{Name: "kwave", Category: CatAudioEditor},
		{Name: "ardour", Category: CatAudioEditor},
		{Name: "sweep", Category: CatAudioEditor},
		{Name: "rezound", Category: CatAudioEditor},
		{Name: "jokosher", Category: CatAudioEditor},
		{Name: "traverso", Category: CatAudioEditor},
		{Name: "lmms", Category: CatAudioEditor},

		{Name: "cheese", Category: CatVideoRecorder},
		{Name: "zart", Category: CatVideoRecorder},
		{Name: "guvcview", Category: CatVideoRecorder},
		{Name: "kamoso", Category: CatVideoRecorder},
		{Name: "webcamoid", Category: CatVideoRecorder},
		{Name: "luvcview", Category: CatVideoRecorder},
		{Name: "fswebcam", Category: CatVideoRecorder},
		{Name: "motion", Category: CatVideoRecorder},

		{Name: "arecord", Category: CatAudioRecorder},
		{Name: "gnome-sound-recorder", Category: CatAudioRecorder},
		{Name: "qarecord", Category: CatAudioRecorder},
		{Name: "audio-recorder", Category: CatAudioRecorder},
		{Name: "krecord", Category: CatAudioRecorder},
		{Name: "sox-rec", Category: CatAudioRecorder},
		{Name: "ffmpeg-alsa", Category: CatAudioRecorder},
		{Name: "pulse-recorder", Category: CatAudioRecorder},

		{Name: "shutter", Category: CatScreenshot, DelayedShot: true},
		{Name: "gnome-screenshot", Category: CatScreenshot, DelayedShot: true},
		{Name: "ksnapshot", Category: CatScreenshot, DelayedShot: true},
		{Name: "scrot", Category: CatScreenshot},
		{Name: "xfce4-screenshooter", Category: CatScreenshot, DelayedShot: true},
		{Name: "import-im", Category: CatScreenshot},
		{Name: "maim", Category: CatScreenshot},
		{Name: "deepin-screenshot", Category: CatScreenshot},
		{Name: "spectacle", Category: CatScreenshot, DelayedShot: true},
		{Name: "flameshot", Category: CatScreenshot},

		{Name: "istanbul", Category: CatScreencast},
		{Name: "recordmydesktop", Category: CatScreencast},
		{Name: "simplescreenrecorder", Category: CatScreencast},
		{Name: "vokoscreen", Category: CatScreencast},
		{Name: "kazam", Category: CatScreencast},
		{Name: "byzanz", Category: CatScreencast},
		{Name: "obs-studio", Category: CatScreencast},
		{Name: "green-recorder", Category: CatScreencast},

		{Name: "firefox", Category: CatBrowser},
		{Name: "chrome", Category: CatBrowser},
		{Name: "chromium", Category: CatBrowser},
		{Name: "opera", Category: CatBrowser},
		{Name: "vivaldi", Category: CatBrowser},
		{Name: "qutebrowser", Category: CatBrowser},
		{Name: "midori", Category: CatBrowser},
		{Name: "epiphany", Category: CatBrowser},
	}
	return specs
}

// ClipboardPool returns the 50-application clipboard pool: office
// programs, text and media editors, web browsers, email clients, and
// terminal emulators (§V-C).
func ClipboardPool() []AppSpec {
	names := []string{
		"libreoffice-writer", "libreoffice-calc", "libreoffice-impress",
		"abiword", "gnumeric", "calligra-words", "onlyoffice", "wps-office",
		"gedit", "kate", "mousepad", "leafpad", "nano-x", "emacs", "gvim",
		"sublime-text", "atom", "geany", "bluefish", "brackets",
		"gimp", "inkscape", "krita", "darktable", "shotwell", "audacity-clip",
		"vlc", "mpv", "totem", "rhythmbox",
		"firefox-clip", "chromium-clip", "opera-clip", "epiphany-clip",
		"thunderbird", "evolution", "claws-mail", "kmail", "geary", "mutt-x",
		"xterm", "gnome-terminal", "konsole", "xfce4-terminal", "urxvt",
		"alacritty", "terminator", "tilix", "st-term", "kitty",
	}
	specs := make([]AppSpec, 0, len(names))
	for _, n := range names {
		specs = append(specs, AppSpec{Name: n, Category: CatClipboard})
	}
	return specs
}
