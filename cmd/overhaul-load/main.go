// Command overhaul-load drives a fleet of Overhaul sessions with
// open-loop traffic and reports sustained throughput and decision
// latency quantiles.
//
// Usage:
//
//	overhaul-load [-sessions n] [-duration d] [-mix name] [-workers n]
//	              [-seed n] [-json] [-store dir] [-batch-records n]
//	              [-batch-bytes n] [-flush-interval d] [-sink-batch n]
//
// The generator is open-loop: every event has a scheduled arrival time
// drawn from the mix's arrival process before the run starts ticking,
// and latency is measured from that *scheduled* time to completion —
// never from when the generator got around to sending. A closed-loop
// generator silently self-throttles when the system under test slows
// down (coordinated omission); this one instead accumulates lateness
// into the reported quantiles, which is the honest number for "can one
// machine hold N desks".
//
// Traffic mixes come from internal/workload: "poisson-desks"
// (independent interactive users), "bot-storm" (bursty automated
// probing, nearly all denials), and "spyware-heavy" (the §V-D stealer's
// poll cycle at fleet scale). Per-worker latency histograms are merged
// after the run, so recording never contends across workers.
//
// With -json the report is a map keyed like sub-benchmarks
// (BenchmarkFleetLoad/mix=…/sessions=…/metric=…) with ns_per_op
// values, the exact shape overhaul-benchjson -check validates — CI's
// fleet smoke job pipes one through it.
//
// With -store DIR every session's decisions additionally sink into a
// shared durable audit store through per-session batching sinks
// (auditstore.BatchSink → FileStore group commit). The store's
// group-commit bounds are exposed as -batch-records/-batch-bytes and
// the leader linger as -flush-interval; -sink-batch sets how many
// decisions a session buffers before handing the store one batch. The
// report gains a throughput section (records/sec, batch-size
// histogram, dropped-ack count) and the -json output becomes the
// wrapped {"benchmarks": …, "store": …} shape, which
// overhaul-benchjson -check also validates — including that
// dropped_acks is zero.
package main

import (
	"container/heap"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"overhaul/internal/auditstore"
	"overhaul/internal/clock"
	"overhaul/internal/fleet"
	"overhaul/internal/monitor"
	"overhaul/internal/telemetry"
	"overhaul/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-load:", err)
		os.Exit(1)
	}
}

func run() error {
	sessions := flag.Int("sessions", 1000, "number of concurrent sessions to boot")
	duration := flag.Duration("duration", 10*time.Second, "measured load duration")
	mixName := flag.String("mix", "poisson-desks", "traffic mix: poisson-desks, bot-storm, or spyware-heavy")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "generator workers (sessions are partitioned across them)")
	seed := flag.Int64("seed", 1, "base seed for the per-session traffic streams")
	asJSON := flag.Bool("json", false, "emit the report as benchjson-compatible JSON")
	storeDir := flag.String("store", "", "sink every decision into a durable audit store at this directory and report its throughput")
	batchRecords := flag.Int("batch-records", auditstore.DefaultBatchRecords, "store group-commit bound: records per durable batch")
	batchBytes := flag.Int("batch-bytes", auditstore.DefaultBatchBytes, "store group-commit bound: encoded bytes per durable batch")
	flushInterval := flag.Duration("flush-interval", 0, "store group-commit linger: how long a leader waits for followers (0 = commit immediately)")
	sinkBatch := flag.Int("sink-batch", 32, "decisions a session buffers before handing the store one batch")
	flag.Parse()

	if *sessions <= 0 {
		return fmt.Errorf("need at least one session")
	}
	if *workers <= 0 {
		return fmt.Errorf("need at least one worker")
	}
	if *workers > *sessions {
		*workers = *sessions
	}
	mix, err := workload.MixByName(*mixName)
	if err != nil {
		return err
	}
	var scfg *storeConfig
	if *storeDir != "" {
		scfg = &storeConfig{
			dir: *storeDir,
			opts: auditstore.Options{
				BatchRecords:  *batchRecords,
				BatchBytes:    *batchBytes,
				FlushInterval: *flushInterval,
			},
			sinkBatch: *sinkBatch,
		}
	}

	rep, err := generate(mix, *sessions, *workers, *duration, *seed, scfg)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		bench := rep.benchEntries(mix.Name, *sessions)
		if rep.store != nil {
			// The wrapped shape: benchmarks plus the store throughput
			// section overhaul-benchjson -check validates.
			return enc.Encode(map[string]any{
				"benchmarks": bench,
				"store":      rep.store.section(),
			})
		}
		return enc.Encode(bench)
	}
	rep.print(os.Stdout, mix.Name, *sessions, *workers)
	return nil
}

// storeConfig is the optional durable-sink setup for a run.
type storeConfig struct {
	dir       string
	opts      auditstore.Options
	sinkBatch int
}

// storeReport is what the durable sink did during the run.
type storeReport struct {
	records     int
	elapsed     time.Duration
	flushTime   time.Duration
	stats       auditstore.BatchStats
	droppedAcks uint64
}

// StoreSection is the JSON throughput section, shared by name with
// overhaul-benchjson's validator.
type StoreSection struct {
	RecordsPerSec float64           `json:"records_per_sec"`
	Records       int               `json:"records"`
	Batches       uint64            `json:"batches"`
	MaxBatch      int               `json:"max_batch"`
	BatchHist     map[string]uint64 `json:"batch_size_hist"`
	DroppedAcks   uint64            `json:"dropped_acks"`
}

func (sr *storeReport) section() StoreSection {
	hist := make(map[string]uint64)
	for i, n := range sr.stats.SizeHist {
		if n > 0 {
			hist[auditstore.BatchBucketLabel(i)] = n
		}
	}
	sec := StoreSection{
		Records:     sr.records,
		Batches:     sr.stats.Batches,
		MaxBatch:    sr.stats.MaxBatch,
		BatchHist:   hist,
		DroppedAcks: sr.droppedAcks,
	}
	if sr.elapsed > 0 {
		sec.RecordsPerSec = float64(sr.records) / sr.elapsed.Seconds()
	}
	return sec
}

// report is the outcome of one load run.
type report struct {
	bootTime  time.Duration
	elapsed   time.Duration
	events    uint64
	decisions uint64
	notifies  uint64
	lat       *telemetry.LatencyHist
	stats     fleet.FleetStats
	store     *storeReport // nil without -store
}

// loadSession is one session's generator-side state: its event stream
// and the already-drawn next event.
type loadSession struct {
	sess   *fleet.Session
	id     uint64
	pid    int
	stream *workload.MixStream
	next   workload.FleetEvent
	nextAt int64 // scheduled arrival, unix nanos
}

// sessionHeap orders a worker's sessions by next scheduled arrival.
type sessionHeap []*loadSession

func (h sessionHeap) Len() int           { return len(h) }
func (h sessionHeap) Less(i, j int) bool { return h[i].nextAt < h[j].nextAt }
func (h sessionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *sessionHeap) Push(x any)        { *h = append(*h, x.(*loadSession)) }
func (h *sessionHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// generate boots the fleet, partitions sessions across workers, and
// runs the open-loop load for the configured duration.
func generate(mix workload.FleetMix, sessions, workers int, duration time.Duration, seed int64, scfg *storeConfig) (*report, error) {
	f, err := fleet.New(fleet.Config{Policy: monitor.Policy{Enforce: true}})
	if err != nil {
		return nil, err
	}

	var st *auditstore.FileStore
	var sinkStats auditstore.SinkStats
	var sinks []*auditstore.BatchSink
	if scfg != nil {
		st, err = auditstore.Open(scfg.dir, scfg.opts)
		if err != nil {
			return nil, err
		}
		defer st.Close() //overhaul:allow errdrop store close after the run's flush already counted failures
	}

	clk := clock.System{}
	booted := make([]*loadSession, sessions)
	bootStart := clk.Now()
	for i := range booted {
		s := f.CreateSession()
		pid, err := s.Spawn()
		if err != nil {
			return nil, err
		}
		if st != nil {
			bs := auditstore.NewBatchSink(st, s.ID(), scfg.sinkBatch, &sinkStats)
			s.SetAuditSink(bs.Sink())
			sinks = append(sinks, bs)
		}
		booted[i] = &loadSession{
			sess:   s,
			id:     s.ID(),
			pid:    pid,
			stream: mix.Stream(seed + int64(i)),
		}
	}
	bootTime := clk.Now().Sub(bootStart)

	start := clk.Now().Add(50 * time.Millisecond) // all workers start on one schedule origin
	deadline := start.Add(duration)

	// Partition round-robin and pre-draw each session's first arrival.
	parts := make([]sessionHeap, workers)
	for i, ls := range booted {
		ls.next = ls.stream.Next()
		ls.nextAt = start.UnixNano() + int64(ls.next.Gap)
		parts[i%workers] = append(parts[i%workers], ls)
	}

	hists := make([]*telemetry.LatencyHist, workers)
	counts := make([]struct{ events, decisions, notifies uint64 }, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		hists[w] = &telemetry.LatencyHist{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := parts[w]
			heap.Init(&h)
			hist := hists[w]
			end := deadline.UnixNano()
			for len(h) > 0 {
				ls := h[0]
				if ls.nextAt >= end {
					break // every remaining arrival is past the deadline
				}
				// Open loop: sleep until the scheduled arrival if we are
				// early; if we are late, fire immediately and let the
				// lateness land in the measured latency.
				if wait := ls.nextAt - clk.Now().UnixNano(); wait > 0 {
					time.Sleep(time.Duration(wait)) //overhaul:allow clockcheck open-loop pacing waits real wall time until the scheduled arrival
				}
				ev := ls.next
				var err error
				if ev.Notify {
					err = ls.sess.NotifyNanos(ls.pid, ls.nextAt)
					counts[w].notifies++
				} else {
					_, err = ls.sess.DecideNanos(ls.pid, ev.Op, ls.nextAt)
					counts[w].decisions++
				}
				if err != nil {
					// Lifecycle errors cannot happen here (the generator
					// owns its sessions); anything else is a bug worth
					// dying loudly for in a load tool.
					panic(err)
				}
				hist.Observe(time.Duration(clk.Now().UnixNano() - ls.nextAt))
				counts[w].events++
				ev2 := ls.stream.Next()
				ls.next = ev2
				ls.nextAt += int64(ev2.Gap)
				heap.Fix(&h, 0)
			}
		}(w)
	}
	wg.Wait()
	elapsed := clk.Now().Sub(start)
	if elapsed > duration {
		elapsed = duration // idle tail after the last pre-deadline arrival
	}

	rep := &report{bootTime: bootTime, elapsed: elapsed, lat: &telemetry.LatencyHist{}, stats: f.StatsSnapshot()}
	for w := 0; w < workers; w++ {
		rep.lat.Merge(hists[w])
		rep.events += counts[w].events
		rep.decisions += counts[w].decisions
		rep.notifies += counts[w].notifies
	}
	if st != nil {
		flushStart := clk.Now()
		for _, bs := range sinks {
			bs.Flush()
		}
		flushTime := clk.Now().Sub(flushStart)
		records, err := st.Count()
		if err != nil {
			return nil, err
		}
		rep.store = &storeReport{
			records:     records,
			elapsed:     elapsed + flushTime,
			flushTime:   flushTime,
			stats:       st.BatchStats(),
			droppedAcks: sinkStats.Errors.Load(),
		}
	}
	return rep, nil
}

// benchEntry mirrors overhaul-benchjson's Entry.
type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchEntries renders the report as a benchjson-compatible map:
// latency quantiles and mean inter-completion time (1e9 / throughput),
// all in nanoseconds.
func (r *report) benchEntries(mix string, sessions int) map[string]benchEntry {
	prefix := fmt.Sprintf("BenchmarkFleetLoad/mix=%s/sessions=%d", mix, sessions)
	s := r.lat.Summary()
	out := map[string]benchEntry{
		prefix + "/metric=p50":  {NsPerOp: nonZero(float64(s.P50))},
		prefix + "/metric=p99":  {NsPerOp: nonZero(float64(s.P99))},
		prefix + "/metric=p999": {NsPerOp: nonZero(float64(s.P999))},
		prefix + "/metric=max":  {NsPerOp: nonZero(float64(s.Max))},
	}
	if r.events > 0 && r.elapsed > 0 {
		out[prefix+"/metric=interarrival"] = benchEntry{NsPerOp: float64(r.elapsed) / float64(r.events)}
	}
	return out
}

// nonZero clamps to 1ns: a sub-resolution quantile is still a valid
// measurement, and benchjson -check rejects non-positive ns/op.
func nonZero(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}

// print renders the human report.
func (r *report) print(w *os.File, mix string, sessions, workers int) {
	s := r.lat.Summary()
	fmt.Fprintf(w, "fleet load: mix=%s sessions=%d workers=%d\n", mix, sessions, workers)
	fmt.Fprintf(w, "  boot: %d sessions in %v (%.0f sessions/sec)\n",
		sessions, r.bootTime.Round(time.Microsecond), float64(sessions)/r.bootTime.Seconds())
	fmt.Fprintf(w, "  ran %v: %d events (%d decisions, %d notifications), %.0f events/sec\n",
		r.elapsed.Round(time.Millisecond), r.events, r.decisions, r.notifies,
		float64(r.events)/r.elapsed.Seconds())
	fmt.Fprintf(w, "  decisions: %d grants, %d denials, %d audit drops\n",
		r.stats.Grants, r.stats.Denials, r.stats.DroppedAudit)
	fmt.Fprintf(w, "  latency (scheduled→done): p50=%v p90=%v p99=%v p999=%v max=%v\n",
		s.P50, s.P90, s.P99, s.P999, s.Max)
	if r.store != nil {
		sec := r.store.section()
		fmt.Fprintf(w, "  durable store: %d records in %v (%.0f records/sec), %d batches (max %d), final flush %v\n",
			sec.Records, r.store.elapsed.Round(time.Millisecond), sec.RecordsPerSec,
			sec.Batches, sec.MaxBatch, r.store.flushTime.Round(time.Microsecond))
		fmt.Fprintf(w, "  batch sizes:")
		for i := 0; i < len(r.store.stats.SizeHist); i++ {
			if n := r.store.stats.SizeHist[i]; n > 0 {
				fmt.Fprintf(w, " %s=%d", auditstore.BatchBucketLabel(i), n)
			}
		}
		fmt.Fprintf(w, "\n  dropped acks: %d\n", sec.DroppedAcks)
	}
}
