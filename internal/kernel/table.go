package kernel

import (
	"sort"
	"sync"
	"time"
)

// procShards stripes the process table. Power of two so the shard
// index is a mask of the pid; 16 stripes keep fork/exit of unrelated
// processes off each other's locks at the core counts the ROADMAP
// targets.
const procShards = 16

// procShard is one stripe: an independently locked slice of the pid
// space. Reads (the decision path resolving pid → *Process) take the
// read lock; only fork/spawn/exit write.
type procShard struct {
	mu    sync.RWMutex
	procs map[int]*Process
}

// procTable is the sharded process table. A pid's shard never changes,
// so a lookup is one RLock on 1/procShards of the table.
type procTable struct {
	shards [procShards]procShard
}

func newProcTable() *procTable {
	t := &procTable{}
	for i := range t.shards {
		t.shards[i].procs = make(map[int]*Process)
	}
	return t
}

func (t *procTable) shard(pid int) *procShard {
	return &t.shards[uint(pid)&(procShards-1)]
}

func (t *procTable) get(pid int) (*Process, bool) {
	sh := t.shard(pid)
	sh.mu.RLock()
	p, ok := sh.procs[pid]
	sh.mu.RUnlock()
	return p, ok
}

func (t *procTable) put(p *Process) {
	pid := p.PID()
	sh := t.shard(pid)
	sh.mu.Lock()
	sh.procs[pid] = p
	sh.mu.Unlock()
}

func (t *procTable) remove(pid int) {
	sh := t.shard(pid)
	sh.mu.Lock()
	delete(sh.procs, pid)
	sh.mu.Unlock()
}

// pids returns every live pid, sorted.
func (t *procTable) pids() []int {
	var out []int
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for pid := range sh.procs {
			out = append(out, pid)
		}
		sh.mu.RUnlock()
	}
	sort.Ints(out)
	return out
}

// --- atomic stamp encoding ----------------------------------------------

// Interaction stamps are stored as unix nanoseconds in an atomic.Int64
// so the decision path reads them without a lock. 0 is the "no
// interaction" sentinel; that is unambiguous because every clock in
// this tree reports instants at or after clock.Epoch (2016) — simulated
// time starts there and never runs backwards. Instants at or before
// the unix epoch are not representable, which no caller produces.

// stampNanos encodes a stamp time (zero time → 0).
func stampNanos(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// stampTime decodes a stored stamp (0 → zero time).
func stampTime(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}
