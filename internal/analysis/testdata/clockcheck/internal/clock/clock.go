// Package clock mirrors the real internal/clock: the one place
// allowed to read the wall clock, since it implements the injectable
// Clock interface over it.
package clock

import "time"

// Now is exempt by directory.
func Now() time.Time { return time.Now() }
