package auditstore_test

import (
	"fmt"
	"runtime"
	"testing"

	"overhaul/internal/auditstore"
)

// Per-scale benchmark tables in the crumbs style (SNIPPETS.md Snippet
// 2): every operation at 10/100/1k/10k records for both backends, so
// BENCH_overhaul.json records how each scales and bench-compare blocks
// regressions at any scale, not just the one a change happened to be
// tuned on. File-backed rows run with Sync off: the tables measure the
// store, not the filesystem.
var benchScales = [...]int{10, 100, 1000, 10000}

// benchStore builds a prefilled store of the given backend and size.
func benchStore(b *testing.B, backend string, n int) auditstore.Store {
	b.Helper()
	var st auditstore.Store
	if backend == "mem" {
		st = auditstore.NewMemStore()
	} else {
		fs, err := auditstore.Open(b.TempDir(), auditstore.Options{})
		if err != nil {
			b.Fatalf("open: %v", err)
		}
		st = fs
	}
	for i := 0; i < n; i++ {
		if _, err := st.Append(mkRecord(i)); err != nil {
			b.Fatalf("prefill %d: %v", i, err)
		}
	}
	// Settle the heap before the timer starts: these loops are short
	// (sub-µs ops × 2000 iterations), so whether a GC cycle lands inside
	// the timed region otherwise dominates run-to-run variance.
	runtime.GC()
	return st
}

func BenchmarkStoreAppend(b *testing.B) {
	for _, backend := range []string{"mem", "jsonl"} {
		for _, n := range benchScales {
			b.Run(fmt.Sprintf("%s/%d", backend, n), func(b *testing.B) {
				st := benchStore(b, backend, n)
				defer st.Close() //overhaul:allow errdrop bench cleanup
				recs := make([]auditstore.Record, b.N)
				for i := range recs {
					recs[i] = mkRecord(n + i)
				}
				runtime.GC()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := st.Append(recs[i]); err != nil {
						b.Fatalf("append: %v", err)
					}
				}
			})
		}
	}
}

func BenchmarkStoreGet(b *testing.B) {
	for _, backend := range []string{"mem", "jsonl"} {
		for _, n := range benchScales {
			b.Run(fmt.Sprintf("%s/%d", backend, n), func(b *testing.B) {
				st := benchStore(b, backend, n)
				defer st.Close() //overhaul:allow errdrop bench cleanup
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					seq := uint64(i%n) + 1
					if _, ok, err := st.Get(seq); !ok || err != nil {
						b.Fatalf("get %d: ok=%v err=%v", seq, ok, err)
					}
				}
			})
		}
	}
}

// BenchmarkStoreEncodeV2 measures one record through the v2 binary
// frame encoder into a reused buffer — the per-record cost inside a
// group commit. The 0-alloc figure is load-bearing: overhaul-benchjson
// hard-gates it, because one allocation here multiplies across every
// record the fleet ever appends.
func BenchmarkStoreEncodeV2(b *testing.B) {
	recs := make([]auditstore.Record, 64)
	for i := range recs {
		recs[i] = mkRecord(i)
		recs[i].Seq = uint64(i + 1)
	}
	var enc auditstore.FrameEncoder
	buf := make([]byte, 0, 1<<12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = enc.AppendRecord(buf[:0], &recs[i%len(recs)])
		if err != nil {
			b.Fatalf("encode: %v", err)
		}
	}
}

// BenchmarkStoreScanSince measures a time-bounded tail query — the
// "what happened in the last minute" shape. The since bound lands 90%
// into the stream, so a seek (binary search on the time-ordered index)
// touches ~10% of the records a full pass would.
func BenchmarkStoreScanSince(b *testing.B) {
	for _, backend := range []string{"mem", "jsonl"} {
		for _, n := range benchScales {
			b.Run(fmt.Sprintf("%s/%d", backend, n), func(b *testing.B) {
				st := benchStore(b, backend, n)
				defer st.Close() //overhaul:allow errdrop bench cleanup
				q := auditstore.Query{
					Since:   mkRecord(n * 9 / 10).Time,
					Verdict: "deny",
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					matched := 0
					err := st.Scan(q, func(auditstore.Record) bool {
						matched++
						return true
					})
					if err != nil || matched == 0 {
						b.Fatalf("scan since: matched=%d err=%v", matched, err)
					}
				}
			})
		}
	}
}

func BenchmarkStoreScan(b *testing.B) {
	// Scan measures a full filtered pass: the deny posting list (~1/3
	// of records) plus a reason substring check — the shape an
	// overhaul-top triage query takes.
	q := auditstore.Query{Verdict: "deny", Reason: "recent"}
	for _, backend := range []string{"mem", "jsonl"} {
		for _, n := range benchScales {
			b.Run(fmt.Sprintf("%s/%d", backend, n), func(b *testing.B) {
				st := benchStore(b, backend, n)
				defer st.Close() //overhaul:allow errdrop bench cleanup
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					matched := 0
					err := st.Scan(q, func(auditstore.Record) bool {
						matched++
						return true
					})
					if err != nil || matched == 0 {
						b.Fatalf("scan: matched=%d err=%v", matched, err)
					}
				}
			})
		}
	}
}
