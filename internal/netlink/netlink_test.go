package netlink

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func allowAll(int) error { return nil }

func allowOnly(pid int) AuthenticatorFunc {
	return func(p int) error {
		if p != pid {
			return fmt.Errorf("pid %d is not the display server", p)
		}
		return nil
	}
}

func TestConnectAuthenticated(t *testing.T) {
	h, err := NewHub(allowOnly(42))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	if _, err := h.Connect(42, nil); err != nil {
		t.Fatalf("Connect(42): %v", err)
	}
	if !h.Connected(42) {
		t.Fatal("Connected(42) = false")
	}
}

func TestConnectRejectedPeer(t *testing.T) {
	h, err := NewHub(allowOnly(42))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	if _, err := h.Connect(666, nil); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("Connect(666) = %v, want ErrAuthFailed", err)
	}
	if h.Connected(666) {
		t.Fatal("rejected peer is listed as connected")
	}
	if s := h.StatsSnapshot(); s.AuthFailures != 1 {
		t.Fatalf("AuthFailures = %d, want 1", s.AuthFailures)
	}
}

func TestDuplicateConnect(t *testing.T) {
	h, err := NewHub(AuthenticatorFunc(allowAll))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	if _, err := h.Connect(1, nil); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if _, err := h.Connect(1, nil); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("second Connect = %v, want ErrDuplicate", err)
	}
}

func TestUserToKernelCall(t *testing.T) {
	h, err := NewHub(AuthenticatorFunc(allowAll))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	h.SetKernelHandler(func(msg any) (any, error) {
		s, ok := msg.(string)
		if !ok {
			t.Fatalf("kernel got %T", msg)
		}
		return "ack:" + s, nil
	})
	c, err := h.Connect(1, nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	reply, err := c.Call("notify")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if reply != "ack:notify" {
		t.Fatalf("reply = %v", reply)
	}
}

func TestKernelToUserCall(t *testing.T) {
	h, err := NewHub(AuthenticatorFunc(allowAll))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	_, err = h.Connect(5, func(msg any) (any, error) { return "shown", nil })
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	reply, err := h.CallUser(5, "alert")
	if err != nil {
		t.Fatalf("CallUser: %v", err)
	}
	if reply != "shown" {
		t.Fatalf("reply = %v", reply)
	}
}

func TestCallUserNotConnected(t *testing.T) {
	h, err := NewHub(AuthenticatorFunc(allowAll))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	if _, err := h.CallUser(9, "alert"); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("CallUser = %v, want ErrNotConnected", err)
	}
}

func TestCallUserNoHandler(t *testing.T) {
	h, err := NewHub(AuthenticatorFunc(allowAll))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	if _, err := h.Connect(5, nil); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if _, err := h.CallUser(5, "alert"); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("CallUser = %v, want ErrNoHandler", err)
	}
}

func TestCallNoKernelHandler(t *testing.T) {
	h, err := NewHub(AuthenticatorFunc(allowAll))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	c, err := h.Connect(1, nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if _, err := c.Call("x"); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("Call = %v, want ErrNoHandler", err)
	}
}

func TestCloseDisconnects(t *testing.T) {
	h, err := NewHub(AuthenticatorFunc(allowAll))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	c, err := h.Connect(1, nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if h.Connected(1) {
		t.Fatal("still connected after close")
	}
	if _, err := c.Call("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call after close = %v, want ErrClosed", err)
	}
	if err := c.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
	// PID may reconnect after closing.
	if _, err := h.Connect(1, nil); err != nil {
		t.Fatalf("reconnect: %v", err)
	}
}

func TestKernelHandlerErrorPropagates(t *testing.T) {
	h, err := NewHub(AuthenticatorFunc(allowAll))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	sentinel := errors.New("bad request")
	h.SetKernelHandler(func(any) (any, error) { return nil, sentinel })
	c, err := h.Connect(1, nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if _, err := c.Call("x"); !errors.Is(err, sentinel) {
		t.Fatalf("Call = %v, want sentinel", err)
	}
}

func TestStatsCounting(t *testing.T) {
	h, err := NewHub(AuthenticatorFunc(allowAll))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	h.SetKernelHandler(func(any) (any, error) { return nil, nil })
	c, err := h.Connect(1, func(any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Call("up"); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	if _, err := h.CallUser(1, "down"); err != nil {
		t.Fatalf("CallUser: %v", err)
	}
	s := h.StatsSnapshot()
	if s.Connects != 1 || s.UserToKernel != 3 || s.KernelToUser != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentCalls(t *testing.T) {
	h, err := NewHub(AuthenticatorFunc(allowAll))
	if err != nil {
		t.Fatalf("NewHub: %v", err)
	}
	var count sync.Map
	h.SetKernelHandler(func(msg any) (any, error) {
		count.Store(msg, true)
		return msg, nil
	})
	c, err := h.Connect(1, nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Call(i); err != nil {
				t.Errorf("Call(%d): %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 32; i++ {
		if _, ok := count.Load(i); !ok {
			t.Fatalf("message %d not delivered", i)
		}
	}
}

func TestNewHubNilAuth(t *testing.T) {
	if _, err := NewHub(nil); err == nil {
		t.Fatal("NewHub(nil) succeeded")
	}
}
