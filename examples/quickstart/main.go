// Quickstart: boot an Overhaul machine, see a background microphone
// grab denied, an input-driven one granted, and the trusted alert that
// announces it.
package main

import (
	"fmt"
	"os"
	"time"

	"overhaul"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, mic, _, err := overhaul.NewProtected("tabby-cat")
	if err != nil {
		return err
	}

	app, err := sys.Launch("voice-memo")
	if err != nil {
		return err
	}
	// Let the window exist long enough that input to it is trusted
	// (the clickjacking defence).
	sys.Settle(2 * time.Second)

	// 1. No user interaction: the open is denied.
	if _, err := app.OpenDevice(mic); err != nil {
		fmt.Println("without input :", err)
	}

	// 2. The user clicks the record button; the open that follows is
	//    within δ = 2 s of authentic hardware input: granted.
	if err := app.Click(); err != nil {
		return err
	}
	sys.Settle(150 * time.Millisecond)
	h, err := app.OpenDevice(mic)
	if err != nil {
		return fmt.Errorf("input-driven open should be granted: %w", err)
	}
	fmt.Println("with input    : microphone opened:", h.Path())

	// 3. The trusted output path announced it, with the shared secret.
	for _, a := range sys.ActiveAlerts() {
		fmt.Printf("alert overlay : %q (secret %q, authentic=%v)\n",
			a.Message, a.Secret, sys.X.AuthenticAlert(a))
	}

	// 4. Everything is in the kernel audit log.
	for _, d := range sys.Audit() {
		fmt.Printf("audit         : pid=%d op=%-5s verdict=%-5s (%s)\n",
			d.PID, d.Op, d.Verdict, d.Reason)
	}
	return nil
}
