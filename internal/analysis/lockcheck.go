package analysis

import (
	"go/ast"
	"go/types"
)

// Lockcheck enforces the locking discipline of the simulated kernel's
// shared structures. Two rules:
//
//  1. Pairing: within a function, every X.Lock() must have a matching
//     X.Unlock() (deferred or explicit) on the same receiver
//     expression, and likewise RLock/RUnlock. The codebase uses both
//     the defer idiom and short explicit critical sections that
//     release before blocking work; what is never acceptable is a
//     lock with no release in sight.
//
//  2. Guarded fields: the repository convention (documented in
//     internal/ipc and internal/kernel) declares a struct's mutex
//     before the fields it guards. An exported method of a
//     lock-bearing type that reads or writes a field declared after
//     the mutex without ever acquiring it is flagged. Fields whose
//     own (local) type carries a mutex — the ipc carrier, the
//     kernel's ipcTables — are exempt: such fields are immutable
//     pointers or values whose state is guarded by their own lock,
//     which this rule checks at their methods instead.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc: "locks must be released in the same function, and exported methods " +
		"of lock-bearing types must lock before touching guarded fields",
	Run: runLockcheck,
}

// lockInfo describes one lock-bearing struct type.
type lockInfo struct {
	mutexField string // field name; "Mutex"/"RWMutex" when embedded
	embedded   bool
	guarded    []string          // fields declared after the mutex, in order
	fieldType  map[string]string // guarded field name -> local named type ("" if other)
}

func (li *lockInfo) isGuarded(name string) bool {
	for _, g := range li.guarded {
		if g == name {
			return true
		}
	}
	return false
}

func runLockcheck(pass *Pass) {
	locked := collectLockInfo(pass.Pkg)

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockPairing(pass, fn)
			if !isTestFile(f.Name) {
				checkGuardedFields(pass, fn, locked)
			}
		}
	}
}

// collectLockInfo scans the package's struct declarations for
// sync.Mutex / sync.RWMutex fields and records which sibling fields
// they guard (everything declared after the mutex, by convention).
func collectLockInfo(pkg *Package) map[string]*lockInfo {
	out := make(map[string]*lockInfo)
	for _, f := range pkg.Files {
		syncName := importName(f.AST, "sync")
		if syncName == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			info := &lockInfo{fieldType: make(map[string]string)}
			seenMutex := false
			for _, field := range st.Fields.List {
				if !seenMutex {
					if name, embedded, ok := mutexFieldName(field, syncName); ok {
						info.mutexField, info.embedded = name, embedded
						seenMutex = true
					}
					continue
				}
				tname := localTypeName(field.Type)
				for _, id := range field.Names {
					info.guarded = append(info.guarded, id.Name)
					info.fieldType[id.Name] = tname
				}
			}
			if seenMutex {
				out[ts.Name.Name] = info
			}
			return true
		})
	}
	return out
}

// mutexFieldName matches a struct field of type sync.Mutex or
// sync.RWMutex, named or embedded.
func mutexFieldName(field *ast.Field, syncName string) (name string, embedded, ok bool) {
	sel, isSel := field.Type.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	qual, isIdent := sel.X.(*ast.Ident)
	if !isIdent || qual.Name != syncName {
		return "", false, false
	}
	if sel.Sel.Name != "Mutex" && sel.Sel.Name != "RWMutex" {
		return "", false, false
	}
	if len(field.Names) == 0 {
		return sel.Sel.Name, true, true
	}
	return field.Names[0].Name, false, true
}

// localTypeName extracts the bare local type identifier of a field
// type, through one level of pointer.
func localTypeName(t ast.Expr) string {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// lockVerbs pairs each acquisition method with its release.
var lockVerbs = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// checkLockPairing flags acquisitions with no release on the same
// receiver expression anywhere in the function (nested function
// literals included, so defer-in-closure releases count).
func checkLockPairing(pass *Pass, fn *ast.FuncDecl) {
	type acquisition struct {
		recv string
		verb string
		node *ast.CallExpr
	}
	var acquired []acquisition
	released := make(map[string]bool) // "recv\x00verb"
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		recv := types.ExprString(sel.X)
		switch sel.Sel.Name {
		case "Lock", "RLock":
			acquired = append(acquired, acquisition{recv: recv, verb: sel.Sel.Name, node: call})
		case "Unlock", "RUnlock":
			released[recv+"\x00"+sel.Sel.Name] = true
		}
		return true
	})
	for _, a := range acquired {
		if !released[a.recv+"\x00"+lockVerbs[a.verb]] {
			pass.Reportf(a.node.Pos(), "%s.%s() is never released in this function: pair it with defer %s.%s()",
				a.recv, a.verb, a.recv, lockVerbs[a.verb])
		}
	}
}

// checkGuardedFields flags exported methods of lock-bearing types that
// touch guarded fields without acquiring the type's own mutex.
func checkGuardedFields(pass *Pass, fn *ast.FuncDecl, locked map[string]*lockInfo) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || !fn.Name.IsExported() {
		return
	}
	tname := localTypeName(fn.Recv.List[0].Type)
	info := locked[tname]
	if info == nil || len(fn.Recv.List[0].Names) == 0 {
		return
	}
	recvName := fn.Recv.List[0].Names[0].Name
	if recvName == "_" {
		return
	}

	// The method's own acquisition expression: r.mu for a named field,
	// r itself for an embedded mutex.
	ownLock := recvName + "." + info.mutexField
	if info.embedded {
		ownLock = recvName
	}
	acquires := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") && types.ExprString(sel.X) == ownLock {
			acquires = true
			return false
		}
		return true
	})
	if acquires {
		return
	}
	reported := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recvName || !info.isGuarded(sel.Sel.Name) {
			return true
		}
		// A field whose own type is lock-bearing guards itself; the
		// pointer/value read here is construction-time immutable.
		if ftype := info.fieldType[sel.Sel.Name]; ftype != "" && locked[ftype] != nil {
			return true
		}
		mutex := "the " + info.mutexField + " lock"
		if info.embedded {
			mutex = "the embedded " + info.mutexField
		}
		pass.Reportf(sel.Pos(), "exported method %s.%s reads %s.%s, guarded by %s, without acquiring it",
			tname, fn.Name.Name, recvName, sel.Sel.Name, mutex)
		reported = true
		return false
	})
}
