package kernel

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"overhaul/internal/fs"
	"overhaul/internal/ipc"
)

// Property: along any fork chain, every descendant created after an
// interaction carries exactly the ancestor's stamp (P1 is transitive).
func TestForkChainInheritanceProperty(t *testing.T) {
	f := func(depthSeed uint8) bool {
		depth := int(depthSeed%10) + 1
		e := newEnv(t, enforcing())
		root := e.spawnUser(t, "root-app")
		e.interact(t, root)
		want := root.InteractionStamp()

		cur := root
		for i := 0; i < depth; i++ {
			child, err := cur.Fork()
			if err != nil {
				return false
			}
			if !child.InteractionStamp().Equal(want) {
				return false
			}
			cur = child
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: a chain of pipes propagates the *maximum* stamp seen by any
// sender, never a stale one, and never invents stamps.
func TestPipeChainMaxStampProperty(t *testing.T) {
	f := func(hops uint8, interactAt uint8) bool {
		n := int(hops%6) + 2
		e := newEnv(t, enforcing())
		procs := make([]*Process, n)
		for i := range procs {
			procs[i] = e.spawnUser(t, fmt.Sprintf("p%d", i))
		}
		// One process somewhere in the chain has an interaction.
		idx := int(interactAt) % n
		e.interact(t, procs[idx])
		want := procs[idx].InteractionStamp()

		for i := 0; i+1 < n; i++ {
			pipe := e.k.NewPipe()
			if _, err := pipe.Write(procs[i].PID(), []byte{1}); err != nil {
				return false
			}
			if _, err := pipe.Read(procs[i+1].PID(), make([]byte, 1)); err != nil {
				return false
			}
		}
		// Everyone downstream of idx carries the stamp; everyone
		// strictly upstream has nothing.
		for i, p := range procs {
			got := p.InteractionStamp()
			if i >= idx && !got.Equal(want) {
				return false
			}
			if i < idx && !got.IsZero() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: stamps only ever move forward in time, whatever interleaving
// of notifications and IPC occurs.
func TestStampMonotonicityProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		e := newEnv(t, enforcing())
		a := e.spawnUser(t, "a")
		b := e.spawnUser(t, "b")
		pipe := e.k.NewPipe()

		prevA, prevB := a.InteractionStamp(), b.InteractionStamp()
		for _, s := range steps {
			switch s % 4 {
			case 0:
				e.clk.Advance(time.Duration(s) * time.Millisecond)
				e.interact(t, a)
			case 1:
				e.clk.Advance(time.Duration(s) * time.Millisecond)
				e.interact(t, b)
			case 2:
				_, _ = pipe.Write(a.PID(), []byte{1})
				_, _ = pipe.Read(b.PID(), make([]byte, 1))
			case 3:
				_, _ = pipe.Write(b.PID(), []byte{1})
				_, _ = pipe.Read(a.PID(), make([]byte, 1))
			}
			if a.InteractionStamp().Before(prevA) || b.InteractionStamp().Before(prevB) {
				return false
			}
			prevA, prevB = a.InteractionStamp(), b.InteractionStamp()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentForksUniquePIDs exercises the process table under
// parallel fork/exit load.
func TestConcurrentForksUniquePIDs(t *testing.T) {
	e := newEnv(t, enforcing())
	root := e.spawnUser(t, "root-app")

	const workers = 8
	const perWorker = 50
	var (
		mu   sync.Mutex
		pids = make(map[int]bool)
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				child, err := root.Fork()
				if err != nil {
					t.Errorf("Fork: %v", err)
					return
				}
				mu.Lock()
				if pids[child.PID()] {
					t.Errorf("duplicate pid %d", child.PID())
				}
				pids[child.PID()] = true
				mu.Unlock()
				if err := child.Exit(); err != nil {
					t.Errorf("Exit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(pids) != workers*perWorker {
		t.Fatalf("unique pids = %d, want %d", len(pids), workers*perWorker)
	}
}

// TestConcurrentOpensAndNotifications races device opens against
// interaction notifications; the invariant is no panic/deadlock and a
// consistent audit count.
func TestConcurrentOpensAndNotifications(t *testing.T) {
	e := newEnv(t, enforcing())
	mic, err := e.helper.Attach("microphone")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	app := e.spawnUser(t, "app")

	const n = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			_ = e.k.Monitor().Notify(app.PID(), e.clk.Now())
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			_, _ = e.k.Open(app, mic, fs.AccessRead)
		}
	}()
	wg.Wait()
	if got := len(e.k.Monitor().Audit()); got != n {
		t.Fatalf("audit entries = %d, want %d", got, n)
	}
}

// TestSharedMemConcurrentMappings hammers one segment from several
// goroutines through distinct mappings.
func TestSharedMemConcurrentMappings(t *testing.T) {
	e := newEnv(t, enforcing())
	shm, err := e.k.NewSharedMem(4)
	if err != nil {
		t.Fatalf("NewSharedMem: %v", err)
	}
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := e.spawnUser(t, fmt.Sprintf("w%d", w))
			m := shm.Map(p.PID())
			for i := 0; i < 300; i++ {
				if err := m.Write((w*640+i)%(4*ipc.PageSize-1), []byte{byte(i)}); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
				if _, err := m.Read(0, 1); err != nil {
					t.Errorf("Read: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := shm.StatsSnapshot()
	if st.Faults == 0 {
		t.Fatal("no faults recorded")
	}
}

// TestDisableP1Property: with P1 ablated, no descendant ever carries a
// stamp, whatever the fork pattern.
func TestDisableP1Property(t *testing.T) {
	cfg := enforcing()
	cfg.DisableP1 = true
	e := newEnv(t, cfg)
	root := e.spawnUser(t, "root-app")
	e.interact(t, root)
	f := func(depth uint8) bool {
		cur := root
		for i := 0; i < int(depth%5)+1; i++ {
			child, err := cur.Fork()
			if err != nil {
				return false
			}
			if !child.InteractionStamp().IsZero() {
				return false
			}
			cur = child
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
