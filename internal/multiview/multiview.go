// Package multiview runs the probe layer's libMicro-style multiview
// overhead report. Each micro benchmark exercises one probe-hooked hot
// path — monitor decide, monitor notify, kernel device open, netlink
// round trip, fleet dispatch, xserver input — and is measured K times
// in three instrumentation modes:
//
//   - off: no probe registry is wired in at all. Every hook pointer is
//     nil and Armed() is a nil check. This is the cost center a
//     deployment that never ships probes pays.
//   - idle: every attach point is armed with a probe whose predicate
//     can never match, so the full predicate runs on every event and
//     nothing publishes. This is the always-on observability tax.
//   - match: a match-all probe publishes every event into a
//     batch-drained perf ring, with full telemetry recording enabled —
//     the maximum-observation configuration.
//
// The per-mode minimum over the K repetitions is reported, libMicro
// style: the minimum is the run least disturbed by the scheduler, and
// comparing minima cancels fixed costs. The off→idle delta is gated
// (issue budget: <10% per benchmark); match is reported so the price
// of full tracing is visible but is deliberately not gated.
package multiview

import (
	"fmt"
	"runtime"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/devfs"
	"overhaul/internal/fleet"
	"overhaul/internal/fs"
	"overhaul/internal/kernel"
	"overhaul/internal/monitor"
	"overhaul/internal/netlink"
	"overhaul/internal/probe"
	"overhaul/internal/telemetry"
	"overhaul/internal/xserver"
)

// Mode is one instrumentation level of the multiview comparison.
type Mode int

// The three instrumentation levels, in measurement order.
const (
	ModeOff Mode = iota
	ModeIdle
	ModeMatch
)

// Modes lists the three levels in the order each repetition runs them;
// interleaving keeps slow machine-wide drift (thermal throttling,
// background load) from biasing any single mode.
var Modes = [3]Mode{ModeOff, ModeIdle, ModeMatch}

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeIdle:
		return "idle"
	case ModeMatch:
		return "match"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Defaults for Options and the gate.
const (
	DefaultK   = 5
	DefaultOps = 20000
	// DefaultBudgetPct is the issue's acceptance budget for the
	// off→idle overhead on every benchmark.
	DefaultBudgetPct = 10.0
	// DefaultFloorNs absorbs scheduler noise on sub-100ns benchmarks:
	// a regression must clear both the relative budget and this
	// absolute per-op floor to fail the gate.
	DefaultFloorNs = 10.0
)

// neverMatch is the attached-idle predicate: pid 2^40 is outside any
// simulated pid space, so the spec is evaluated against every event
// and never publishes.
const neverMatch = "pid=1099511627776"

// ringCap and drainEvery keep the match-mode ring ahead of the hottest
// benchmark (a kernel device open emits four events: kernel.open plus
// the monitor's evaluate, audit and decide hooks). Publishing into a
// full ring takes the cheaper drop path, which would understate the
// match-mode cost.
const (
	ringCap    = 1 << 13
	drainEvery = 256
)

// Options parameterises Run.
type Options struct {
	// K is the number of repetitions per (benchmark, mode); the
	// minimum wins. Zero selects DefaultK.
	K int
	// Ops is the number of operations per repetition. Zero selects
	// DefaultOps.
	Ops int
}

// env is the per-run instrumentation a benchmark's setup receives.
type env struct {
	reg *probe.Registry     // nil in ModeOff
	tel *telemetry.Recorder // non-nil only in ModeMatch
}

// newEnv builds the instrumentation for one (benchmark, mode) run and
// returns the ring the harness must drain (nil unless ModeMatch).
func newEnv(m Mode) (env, *probe.Ring, error) {
	switch m {
	case ModeOff:
		return env{}, nil, nil
	case ModeIdle:
		reg := probe.NewRegistry()
		if _, err := reg.AttachSpec(neverMatch, probe.NewRing(64)); err != nil {
			return env{}, nil, err
		}
		return env{reg: reg}, nil, nil
	case ModeMatch:
		reg := probe.NewRegistry()
		ring := probe.NewRing(ringCap)
		if _, err := reg.AttachSpec("", ring); err != nil {
			return env{}, nil, err
		}
		return env{reg: reg, tel: telemetry.New(clock.NewSimulated())}, ring, nil
	}
	return env{}, nil, fmt.Errorf("unknown mode %d", int(m))
}

// A benchmark builds a fresh subsystem instance around the given
// instrumentation and returns the operation to time. The loop index is
// passed in so an op can amortise queue maintenance (the xserver
// benchmark drains its client's event queue every 64 clicks, in every
// mode alike).
type benchmark struct {
	name  string
	setup func(e env) (func(i int) error, error)
}

// benchmarks returns the multiview suite: one micro benchmark per
// probe-hooked subsystem hot path.
func benchmarks() []benchmark {
	return []benchmark{
		{"Decide", setupDecide},
		{"Notify", setupNotify},
		{"KernelOpen", setupKernelOpen},
		{"NetlinkCall", setupNetlinkCall},
		{"FleetDispatch", setupFleetDispatch},
		{"XServerInput", setupXServerInput},
	}
}

// stampTasks is a minimal TaskStore for the monitor-level benchmarks:
// one pid with a newest-wins interaction stamp.
type stampTasks struct {
	pid   int
	stamp time.Time
}

func (t *stampTasks) InteractionStamp(pid int) (time.Time, bool) {
	if pid != t.pid {
		return time.Time{}, false
	}
	return t.stamp, true
}

func (t *stampTasks) SetInteractionStamp(pid int, ts time.Time) error {
	if pid == t.pid && ts.After(t.stamp) {
		t.stamp = ts
	}
	return nil
}

func (t *stampTasks) PermissionsDisabled(int) bool { return false }

// setupDecide measures the monitor decision path: a within-δ grant,
// crossing the evaluate, audit and decide attach points.
func setupDecide(e env) (func(int) error, error) {
	clk := clock.NewSimulated()
	tasks := &stampTasks{pid: 7, stamp: clk.Now()}
	m, err := monitor.New(clk, tasks, monitor.Config{Enforce: true, Telemetry: e.tel, Probes: e.reg})
	if err != nil {
		return nil, err
	}
	opTime := clk.Now().Add(time.Millisecond)
	return func(int) error {
		_ = m.Decide(7, monitor.OpMic, opTime)
		return nil
	}, nil
}

// setupNotify measures the interaction-notification path (stamp
// write), crossing the monitor's audit attach point when alerts fire.
func setupNotify(e env) (func(int) error, error) {
	clk := clock.NewSimulated()
	tasks := &stampTasks{pid: 7, stamp: clk.Now()}
	m, err := monitor.New(clk, tasks, monitor.Config{Enforce: true, Telemetry: e.tel, Probes: e.reg})
	if err != nil {
		return nil, err
	}
	stamp := clk.Now().Add(time.Millisecond)
	return func(int) error {
		return m.Notify(7, stamp)
	}, nil
}

// setupKernelOpen measures a sensitive device open end to end: devmap
// lookup, monitor decision (force-grant, as in Table I), fs open —
// crossing the kernel.open attach point plus the monitor's three.
func setupKernelOpen(e env) (func(int) error, error) {
	clk := clock.NewSimulated()
	fsys := fs.New(clk)
	k, err := kernel.New(clk, fsys, kernel.Config{
		Monitor: monitor.Config{Enforce: true, ForceGrant: true, Telemetry: e.tel, Probes: e.reg},
	})
	if err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll("/dev/snd", 0o755, fs.Root); err != nil {
		return nil, err
	}
	const micPath = "/dev/snd/pcmC0D0c"
	if err := fsys.Mknod(micPath, "microphone", 0o666, fs.Root); err != nil {
		return nil, err
	}
	if err := k.UpdateMapping(micPath, devfs.ClassMicrophone); err != nil {
		return nil, err
	}
	proc, err := k.Spawn(kernel.SpawnSpec{Name: "multiview", Exe: "/usr/bin/multiview", Cred: fs.Cred{UID: 1000, GID: 1000}})
	if err != nil {
		return nil, err
	}
	return func(int) error {
		_, err := k.Open(proc, micPath, fs.AccessRead)
		return err
	}, nil
}

// setupNetlinkCall measures a userspace→kernel round trip on the
// netlink hub with an echo handler, crossing the netlink.recv attach
// point.
func setupNetlinkCall(e env) (func(int) error, error) {
	hub, err := netlink.NewHub(netlink.AuthenticatorFunc(func(int) error { return nil }))
	if err != nil {
		return nil, err
	}
	hub.SetKernelHandler(func(msg any) (any, error) { return msg, nil })
	if e.reg != nil {
		hub.SetProbes(e.reg)
	}
	conn, err := hub.Connect(1, nil)
	if err != nil {
		return nil, err
	}
	msg := any(42)
	return func(int) error {
		_, err := conn.Call(msg)
		return err
	}, nil
}

// setupFleetDispatch measures the fleet ingress: session-table lookup
// plus a within-δ decide, crossing the fleet.dispatch attach point.
func setupFleetDispatch(e env) (func(int) error, error) {
	f, err := fleet.New(fleet.Config{Probes: e.reg})
	if err != nil {
		return nil, err
	}
	s := f.CreateSession()
	if e.tel != nil {
		s.SetTelemetry(e.tel)
	}
	pid, err := s.Spawn()
	if err != nil {
		return nil, err
	}
	const t0 = int64(1_000_000_000)
	if err := s.NotifyNanos(pid, t0); err != nil {
		return nil, err
	}
	req := fleet.Request{SessionID: s.ID(), Kind: fleet.RequestDecide, PID: pid, Op: monitor.OpMic, Time: t0 + 1}
	return func(int) error {
		_, err := f.Dispatch(req)
		return err
	}, nil
}

// setupXServerInput measures a hardware click delivered to a mapped
// window, crossing the xserver.input attach point. The client queue is
// drained every 64 clicks in every mode so queue growth stays bounded
// and its amortised append cost is identical across modes.
func setupXServerInput(e env) (func(int) error, error) {
	clk := clock.NewSimulated()
	srv, err := xserver.NewServer(clk, nil, xserver.Config{Telemetry: e.tel, Probes: e.reg})
	if err != nil {
		return nil, err
	}
	cl, err := srv.Connect(1, "multiview")
	if err != nil {
		return nil, err
	}
	id, err := cl.CreateWindow(0, 0, 200, 200)
	if err != nil {
		return nil, err
	}
	if err := cl.MapWindow(id); err != nil {
		return nil, err
	}
	return func(i int) error {
		srv.HardwareClick(10, 10)
		if i&63 == 63 {
			cl.DrainEvents()
		}
		return nil
	}, nil
}

// Run executes the full multiview matrix — every benchmark × every
// mode × K interleaved repetitions — and returns the per-mode minima.
func Run(opts Options) (*Report, error) {
	k := opts.K
	if k <= 0 {
		k = DefaultK
	}
	ops := opts.Ops
	if ops <= 0 {
		ops = DefaultOps
	}
	benches := benchmarks()
	rows := make([]Row, len(benches))
	for i, b := range benches {
		rows[i].Name = b.name
	}
	for rep := 0; rep < k; rep++ {
		for i, b := range benches {
			// Rotate the mode order per repetition so no mode
			// systematically runs first (and absorbs cold-cache and
			// first-GC effects for the other two).
			for j := range Modes {
				mode := Modes[(rep+j)%len(Modes)]
				m, err := measure(b, mode, ops)
				if err != nil {
					return nil, fmt.Errorf("multiview: %s/mode=%s: %w", b.name, mode, err)
				}
				rows[i].mode(mode).merge(m)
			}
		}
	}
	return &Report{K: k, Ops: ops, Rows: rows}, nil
}

// measure runs one (benchmark, mode) repetition on a fresh subsystem
// instance: warmup, GC fence, then a single timed loop with the
// match-mode ring drained every drainEvery ops.
func measure(b benchmark, mode Mode, ops int) (Measurement, error) {
	e, ring, err := newEnv(mode)
	if err != nil {
		return Measurement{}, err
	}
	op, err := b.setup(e)
	if err != nil {
		return Measurement{}, err
	}
	var drainBuf []probe.Event
	drain := func() {}
	if ring != nil {
		drainBuf = make([]probe.Event, 1024)
		drain = func() {
			for ring.ReadBatch(drainBuf) > 0 {
			}
		}
	}
	warm := ops / 10
	if warm > 1000 {
		warm = 1000
	}
	for i := 0; i < warm; i++ {
		if err := op(i); err != nil {
			return Measurement{}, err
		}
		if i&(drainEvery-1) == drainEvery-1 {
			drain()
		}
	}
	drain()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sw := startWall()
	for i := 0; i < ops; i++ {
		if err := op(i); err != nil {
			return Measurement{}, err
		}
		if i&(drainEvery-1) == drainEvery-1 {
			drain()
		}
	}
	elapsed := sw.lap()
	runtime.ReadMemStats(&after)
	mallocs := after.Mallocs - before.Mallocs
	return Measurement{
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		AllocsPerOp: int64((mallocs + uint64(ops)/2) / uint64(ops)),
	}, nil
}
