// Package audit is one half of the cross-package lock-order cycle.
package audit

import "sync"

// Log embeds its mutex so other packages participate in its class.
type Log struct {
	sync.Mutex
	entries []string
}

// Append acquires the log lock; its Acquires fact travels to
// registry's caller.
func (l *Log) Append(line string) {
	l.Lock()
	defer l.Unlock()
	l.entries = append(l.entries, line)
}
