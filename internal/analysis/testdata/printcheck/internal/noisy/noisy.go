// Package noisy is a printcheck fixture: internal packages must stay
// silent.
package noisy

import (
	"fmt"
	"log" // want "must not import log"
	"os"
)

// Shout prints straight to stdout.
func Shout(msg string) {
	fmt.Println(msg)      // want "fmt.Println"
	fmt.Printf("%s", msg) // want "fmt.Printf"
	log.Print(msg)
	println(msg) // want "builtin println"
}

// Sink leaks a process-global stream.
func Sink() *os.File {
	return os.Stderr // want "os.Stderr"
}

// Quiet builds strings without printing; fine.
func Quiet(msg string) string {
	return fmt.Sprintf("quiet: %s", msg)
}
