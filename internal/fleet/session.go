package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"overhaul/internal/kernel"
	"overhaul/internal/monitor"
	"overhaul/internal/telemetry"
)

// Session is one tenant's Overhaul desktop reduced to its decision
// core: a private process/stamp table, a private audit ring, private
// counters, and an optional private telemetry recorder, all evaluated
// against the fleet's shared immutable Tables. It is a plain struct —
// no goroutine, no channel, no clock — so a fleet can hold 100k of
// them. All methods are safe for concurrent use.
//
// Everything mutable is owned by the session (the time-protection
// partitioning rule); the only cross-session state a decision touches
// is the read-only Tables snapshot and the session-table stripe lock
// on the ingress lookup.
type Session struct {
	id       uint64
	fleet    *Fleet
	auditCap int
	closed   atomic.Bool

	// degraded is the per-session fail-closed flag: one tenant's
	// broken channel degrades that tenant only.
	degraded atomic.Pointer[string]

	nextPID atomic.Int64
	audit   sessionAudit // carries its own lock
	stats   sessionStats // atomics throughout

	// tel is the optional per-session recorder with its pre-resolved
	// handles; nil for the (default) uninstrumented tenant. Set before
	// traffic starts (SetTelemetry is not concurrency-safe against
	// in-flight decisions).
	tel *sessionTel

	// auditSink is the optional durable audit callback (SetAuditSink),
	// invoked under the audit lock so sink order matches ring order.
	// Nil for the (default) ring-only tenant. Set before traffic
	// starts, like tel.
	auditSink func(monitor.Decision)

	mu    sync.RWMutex // guards procs
	procs map[int]*sessionProc
}

// sessionProc is a fleet task struct: just the interaction stamp cell.
// The kernel and the fleet share the StampSlot implementation, so the
// newest-wins CAS-max semantics cannot drift between the two paths.
type sessionProc struct {
	slot kernel.StampSlot
}

// sessionAudit is the per-session audit ring: same fill-in-place ring
// discipline as a monitor audit shard, scoped to one tenant.
type sessionAudit struct {
	mu      sync.Mutex
	ring    []monitor.Decision // cap auditCap, allocated lazily
	head    int
	n       int
	dropped uint64
}

// sessionStats are one tenant's activity counters.
type sessionStats struct {
	notifications atomic.Uint64
	grants        atomic.Uint64
	denials       atomic.Uint64
	alerts        atomic.Uint64
	spawns        atomic.Uint64
	exits         atomic.Uint64
}

// sessionTel bundles a per-session recorder with pre-resolved handles
// so an instrumented session's Decide stays allocation-free.
type sessionTel struct {
	rec     *telemetry.Recorder
	grants  *telemetry.Counter
	denials *telemetry.Counter
	latency *telemetry.LatencyHist
}

// SessionStats is the exported snapshot of one session's counters.
type SessionStats struct {
	Notifications uint64
	Grants        uint64
	Denials       uint64
	Alerts        uint64
	Spawns        uint64
	Exits         uint64
	DroppedAudit  uint64
}

// ID returns the session identifier.
func (s *Session) ID() uint64 { return s.id }

// Closed reports whether the session has been torn down.
func (s *Session) Closed() bool { return s.closed.Load() }

// SetTelemetry attaches a per-session recorder (nil detaches). Handles
// are resolved here, once, so the decision path never builds a label.
// The recorder is the tenant's own: the fleet never aggregates through
// it, keeping telemetry write traffic partitioned too.
func (s *Session) SetTelemetry(rec *telemetry.Recorder) {
	if !rec.Enabled() {
		s.tel = nil
		return
	}
	s.tel = &sessionTel{
		rec:     rec,
		grants:  rec.Counter("fleet", "decisions", "verdict=grant"),
		denials: rec.Counter("fleet", "decisions", "verdict=deny"),
		latency: &telemetry.LatencyHist{},
	}
}

// Telemetry returns the session's recorder (nil when uninstrumented).
func (s *Session) Telemetry() *telemetry.Recorder {
	if s.tel == nil {
		return nil
	}
	return s.tel.rec
}

// LatencyHist returns the session's decision-latency histogram (nil
// when uninstrumented).
func (s *Session) LatencyHist() *telemetry.LatencyHist {
	if s.tel == nil {
		return nil
	}
	return s.tel.latency
}

// SetAuditSink attaches a callback that receives every decision the
// session audits, in audit order — the bridge from the bounded
// per-session ring to a durable store (auditstore.SessionSink). Nil
// detaches. Like SetTelemetry it must be set before traffic starts;
// the callback runs inside the audit critical section and must not
// block or call back into the session.
func (s *Session) SetAuditSink(fn func(monitor.Decision)) {
	s.auditSink = fn
}

// SetDegraded flips this session into fail-closed degraded mode.
func (s *Session) SetDegraded(reason string) {
	if reason == "" {
		reason = "trusted component failure"
	}
	s.degraded.Store(&reason)
}

// ClearDegraded returns the session to normal operation.
func (s *Session) ClearDegraded() {
	s.degraded.Store(nil)
}

// DegradedReason returns the degradation reason and whether the
// session is currently degraded.
func (s *Session) DegradedReason() (string, bool) {
	if p := s.degraded.Load(); p != nil {
		return *p, true
	}
	return "", false
}

// Spawn creates a fresh process in this session with no interaction
// history and returns its pid (pids are session-local).
func (s *Session) Spawn() (int, error) {
	if s.closed.Load() {
		return 0, ErrSessionClosed
	}
	pid := int(s.nextPID.Add(1))
	s.mu.Lock()
	if s.procs == nil {
		s.procs = make(map[int]*sessionProc)
	}
	s.procs[pid] = &sessionProc{}
	s.mu.Unlock()
	s.stats.spawns.Add(1)
	return pid, nil
}

// Fork duplicates parent into a new process, inheriting its
// interaction stamp and minting span — propagation policy P1, same as
// the kernel's fork.
func (s *Session) Fork(parent int) (int, error) {
	if s.closed.Load() {
		return 0, ErrSessionClosed
	}
	s.mu.RLock()
	pp := s.procs[parent]
	s.mu.RUnlock()
	if pp == nil {
		return 0, fmt.Errorf("session %d fork from pid %d: %w", s.id, parent, ErrNoSuchProcess)
	}
	stamp, span := pp.slot.Time(), pp.slot.Span()
	pid := int(s.nextPID.Add(1))
	child := &sessionProc{}
	child.slot.Adopt(stamp, span)
	s.mu.Lock()
	s.procs[pid] = child
	s.mu.Unlock()
	s.stats.spawns.Add(1)
	return pid, nil
}

// Exit removes a process from the session.
func (s *Session) Exit(pid int) error {
	s.mu.Lock()
	_, ok := s.procs[pid]
	if ok {
		delete(s.procs, pid)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("session %d exit pid %d: %w", s.id, pid, ErrNoSuchProcess)
	}
	s.stats.exits.Add(1)
	return nil
}

// PIDCount returns the number of live processes in the session.
func (s *Session) PIDCount() int {
	s.mu.RLock()
	n := len(s.procs)
	s.mu.RUnlock()
	return n
}

// Notify records an interaction notification N_{A,t} for pid.
func (s *Session) Notify(pid int, t time.Time) error {
	return s.NotifyNanos(pid, t.UnixNano())
}

// NotifyNanos is Notify with the stamp as unix nanoseconds (the wire
// form the ingress carries). The stamp write is the kernel's lock-free
// newest-wins CAS-max.
func (s *Session) NotifyNanos(pid int, nanos int64) error {
	if s.closed.Load() {
		return ErrSessionClosed
	}
	s.mu.RLock()
	p := s.procs[pid]
	s.mu.RUnlock()
	if p == nil {
		return fmt.Errorf("session %d notify pid %d: %w", s.id, pid, ErrNoSuchProcess)
	}
	p.slot.Adopt(time.Unix(0, nanos).UTC(), telemetry.SpanContext{})
	s.stats.notifications.Add(1)
	return nil
}

// Decide answers a permission query Q_{A,t} against the shared Tables
// snapshot and this session's private stamp store, appending to the
// session's audit ring. The reason strings are exactly the monitor's —
// both paths run monitor.Policy.Evaluate — which is what the
// fleet ≡ standalone equivalence property pins.
func (s *Session) Decide(pid int, op monitor.Op, opTime time.Time) (monitor.Verdict, error) {
	return s.DecideNanos(pid, op, opTime.UnixNano())
}

// DecideNanos is Decide with the op time as unix nanoseconds. It is
// the fleet's hot path: one atomic Tables load, one striped map read,
// two atomic stamp loads, Policy.Evaluate, and a fill-in-place audit
// append — zero allocations in steady state.
func (s *Session) DecideNanos(pid int, op monitor.Op, nanos int64) (monitor.Verdict, error) {
	if s.closed.Load() {
		return 0, ErrSessionClosed
	}
	tables := s.fleet.tables.Load()
	opTime := time.Unix(0, nanos).UTC()

	s.mu.RLock()
	p := s.procs[pid]
	s.mu.RUnlock()

	var stamp time.Time
	if p != nil {
		stamp = p.slot.Time()
	}
	degraded := ""
	if dp := s.degraded.Load(); dp != nil {
		degraded = *dp
	}

	pol := tables.policy
	verdict, reason := pol.Evaluate(monitor.Query{
		OpTime:   opTime,
		Stamp:    stamp,
		Degraded: degraded,
		Exists:   p != nil,
		// Sessions carry no ptrace state: the guard is a single-desktop
		// debugging defence, and a fleet tenant's debugger lives inside
		// the tenant.
		Disabled: false,
	})

	d := monitor.Decision{
		PID: pid, Op: op, OpTime: opTime, Stamp: stamp,
		Verdict: verdict, Reason: reason,
		Degraded: pol.DegradedDenial(degraded),
	}
	if verdict == monitor.VerdictGrant {
		s.stats.grants.Add(1)
		if tables.alertOps[op] {
			// A real deployment routes the V_{A,op} alert to the
			// tenant's own display server; the fleet core records that
			// one was due.
			s.stats.alerts.Add(1)
		}
	} else {
		s.stats.denials.Add(1)
	}
	s.appendAudit(&d)
	if t := s.tel; t != nil {
		if verdict == monitor.VerdictGrant {
			t.grants.Add(1)
		} else {
			t.denials.Add(1)
		}
	}
	return verdict, nil
}

// appendAudit appends one decision to the session ring, oldest-out,
// and forwards it to the audit sink when one is attached.
func (s *Session) appendAudit(d *monitor.Decision) {
	if s.auditCap == 0 {
		if sink := s.auditSink; sink != nil {
			sink(*d)
		}
		return
	}
	a := &s.audit
	a.mu.Lock()
	if a.ring == nil {
		a.ring = make([]monitor.Decision, s.auditCap)
	}
	var e *monitor.Decision
	if a.n == s.auditCap {
		e = &a.ring[a.head]
		a.head = (a.head + 1) % s.auditCap
		a.dropped++
	} else {
		e = &a.ring[(a.head+a.n)%s.auditCap]
		a.n++
	}
	*e = *d
	if sink := s.auditSink; sink != nil {
		// Under a.mu: the sink sees decisions in exactly ring order.
		sink(*d)
	}
	a.mu.Unlock()
}

// Audit returns a copy of the session's audit ring, oldest first.
func (s *Session) Audit() []monitor.Decision {
	a := &s.audit
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n == 0 {
		return nil
	}
	out := make([]monitor.Decision, a.n)
	for i := 0; i < a.n; i++ {
		out[i] = a.ring[(a.head+i)%s.auditCap]
	}
	return out
}

// DroppedAudit reports how many audit records this session evicted.
func (s *Session) DroppedAudit() uint64 {
	a := &s.audit
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// StatsSnapshot returns a copy of the session counters.
func (s *Session) StatsSnapshot() SessionStats {
	return SessionStats{
		Notifications: s.stats.notifications.Load(),
		Grants:        s.stats.grants.Load(),
		Denials:       s.stats.denials.Load(),
		Alerts:        s.stats.alerts.Load(),
		Spawns:        s.stats.spawns.Load(),
		Exits:         s.stats.exits.Load(),
		DroppedAudit:  s.DroppedAudit(),
	}
}
