package analysis_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"overhaul/internal/analysis"
)

// TestRunCacheRoundTrip checks the driver cache contract on the
// printcheck fixture: a stored run loads back verbatim under the same
// key, the key is stable across recomputation, and it shifts when the
// analyzer selection changes.
func TestRunCacheRoundTrip(t *testing.T) {
	m, err := analysis.Load("testdata/printcheck")
	if err != nil {
		t.Fatal(err)
	}
	suite := []*analysis.Analyzer{analysis.Printcheck}
	key, err := analysis.CacheKey(m, suite)
	if err != nil {
		t.Fatal(err)
	}
	key2, err := analysis.CacheKey(m, suite)
	if err != nil {
		t.Fatal(err)
	}
	if key != key2 {
		t.Fatalf("cache key not stable: %s vs %s", key, key2)
	}
	otherKey, err := analysis.CacheKey(m, []*analysis.Analyzer{analysis.Printcheck, analysis.Errdrop})
	if err != nil {
		t.Fatal(err)
	}
	if otherKey == key {
		t.Error("cache key must depend on the analyzer selection")
	}

	dir := t.TempDir()
	if _, ok := analysis.LoadCachedRun(dir, key); ok {
		t.Fatal("empty cache directory reported a hit")
	}
	diags := analysis.Run(m, suite)
	if len(diags) == 0 {
		t.Fatal("printcheck fixture produced no findings; cache test needs a non-empty run")
	}
	if err := analysis.StoreCachedRun(dir, key, m, diags); err != nil {
		t.Fatal(err)
	}
	back, ok := analysis.LoadCachedRun(dir, key)
	if !ok {
		t.Fatal("stored run did not load back")
	}
	if !reflect.DeepEqual(diags, back) {
		t.Errorf("cached diagnostics differ:\n got %+v\nwant %+v", back, diags)
	}
	if _, ok := analysis.LoadCachedRun(dir, otherKey); ok {
		t.Error("different key must miss")
	}
	if _, ok := analysis.LoadCachedRun(filepath.Join(dir, "nope"), key); ok {
		t.Error("missing cache directory must miss, not error")
	}
}
