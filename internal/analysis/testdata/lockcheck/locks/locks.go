// Package locks is a lockcheck fixture covering both rules: lock
// pairing within a function, and guarded-field access from exported
// methods of lock-bearing types.
package locks

import "sync"

// Counter is lock-bearing: n is declared after mu, so it is guarded.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Add uses the defer idiom.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Value locks before reading.
func (c *Counter) Value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Swap uses a short explicit critical section; pairing is satisfied.
func (c *Counter) Swap(v int) int {
	c.mu.Lock()
	old := c.n
	c.n = v
	c.mu.Unlock()
	return old
}

// Leak acquires and never releases.
func (c *Counter) Leak() {
	c.mu.Lock() // want "never released"
	c.n++
}

// Peek reads the guarded field with no lock in sight.
func (c *Counter) Peek() int {
	return c.n // want "guarded by"
}

// peek is unexported: callers inside the package are expected to hold
// the lock already, so only exported methods are checked.
func (c *Counter) peek() int { return c.n }

// Table exercises the RWMutex verbs.
type Table struct {
	mu sync.RWMutex
	m  map[string]int
}

// Get pairs RLock with a deferred RUnlock.
func (t *Table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// Drop releases with the wrong verb: an RLock needs an RUnlock.
func (t *Table) Drop(k string) {
	t.mu.RLock() // want "never released"
	delete(t.m, k)
	t.mu.Unlock()
}

// Gauge has config before the mutex: name is not guarded.
type Gauge struct {
	name string
	mu   sync.Mutex
	v    int
}

// Name reads a field declared before the mutex; fine without locking.
func (g *Gauge) Name() string { return g.name }

// Box holds a lock-bearing Counter: accesses through inner are the
// Counter's own responsibility, but plain guarded fields still need
// the Box lock.
type Box struct {
	mu    sync.Mutex
	inner *Counter
	label string
}

// Inner delegates to the self-locking Counter.
func (b *Box) Inner() int { return b.inner.Value() }

// Label reads a plain guarded field without locking.
func (b *Box) Label() string {
	return b.label // want "guarded by"
}
