// Command overhaul-ablate quantifies Overhaul's design choices: the δ
// threshold, the shared-memory wait list, the window-visibility
// clickjacking defence, the propagation policies P1/P2, and the ptrace
// guard (the knobs DESIGN.md §6 calls out).
//
// Usage:
//
//	overhaul-ablate [-trials n] [-seed s]
package main

import (
	"flag"
	"fmt"
	"os"

	"overhaul/internal/ablation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-ablate:", err)
		os.Exit(1)
	}
}

func yesno(b bool) string {
	if b {
		return "works"
	}
	return "BROKEN"
}

func run() error {
	trials := flag.Int("trials", 100, "trials per configuration")
	seed := flag.Int64("seed", 7, "RNG seed")
	flag.Parse()

	fmt.Println("Ablation 1 — temporal-proximity threshold δ (paper picks 2 s):")
	tp, err := ablation.ThresholdSweep(nil, *trials, *seed)
	if err != nil {
		return err
	}
	fmt.Println(ablation.FormatThreshold(tp))

	fmt.Println("Ablation 2 — shared-memory wait list (paper picks 500 ms):")
	sp, err := ablation.ShmWaitSweep(nil, *trials/2, *seed)
	if err != nil {
		return err
	}
	fmt.Println(ablation.FormatShmWait(sp))

	fmt.Println("Ablation 3 — window-visibility clickjacking defence:")
	cj, err := ablation.Clickjacking(*trials / 2)
	if err != nil {
		return err
	}
	fmt.Printf("  defence on : %d/%d interactions hijacked\n", cj.DefenceOn.Hijacked, cj.DefenceOn.Attempts)
	fmt.Printf("  defence off: %d/%d interactions hijacked\n\n", cj.DefenceOff.Hijacked, cj.DefenceOff.Attempts)

	fmt.Println("Ablation 4 — propagation policies:")
	for _, cfg := range []struct {
		policy  string
		enabled bool
	}{{"P1", true}, {"P1", false}, {"P2", true}, {"P2", false}} {
		res, err := ablation.PropagationAblation(cfg.policy, cfg.enabled)
		if err != nil {
			return err
		}
		state := "on "
		if !cfg.enabled {
			state = "off"
		}
		fmt.Printf("  %s %s: direct=%s launcher=%s browser=%s cli=%s\n",
			res.Policy, state, yesno(res.DirectAppsWork), yesno(res.LauncherWorks),
			yesno(res.BrowserWorks), yesno(res.CLIToolWorks))
	}
	fmt.Println()

	fmt.Println("Ablation 5 — ptrace guard (launch-then-inject attack):")
	for _, on := range []bool{true, false} {
		res, err := ablation.PtraceGuard(on)
		if err != nil {
			return err
		}
		fmt.Printf("  guard=%-5v injected=%v\n", res.GuardOn, res.Injected)
	}
	return nil
}
