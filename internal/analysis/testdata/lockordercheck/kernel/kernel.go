// Package kernel is the lockordercheck fixture's sharded side:
// cross-shard acquisitions, the sequential (legal) walk, a recursive
// self-lock, and a suppressed variant on a second sharded class.
package kernel

import "sync"

// shard is one slice of the process table; the containing array makes
// it a sharded lock class.
type shard struct {
	mu sync.Mutex
	n  int
}

// Table is the sharded structure.
type Table struct {
	shards [4]shard
}

// Move acquires a second shard while one is held: the cross-shard
// nesting the convention forbids.
func (t *Table) Move(i, j int) {
	t.shards[i].mu.Lock()
	defer t.shards[i].mu.Unlock()
	t.shards[j].mu.Lock() // want "cross-shard acquisition"
	defer t.shards[j].mu.Unlock()
	t.shards[j].n += t.shards[i].n
	t.shards[i].n = 0
}

// Sum locks shards one at a time: the sanctioned pattern, no finding.
func (t *Table) Sum() int {
	total := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		total += t.shards[i].n
		t.shards[i].mu.Unlock()
	}
	return total
}

// Counter is an unsharded class used for the recursive-lock case.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Double re-locks a mutex it already holds.
func (c *Counter) Double() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want "recursive acquisition"
	c.n *= 2
	c.mu.Unlock()
}

// bshard is a second sharded class, so the suppressed edge below is
// distinct from Move's.
type bshard struct {
	mu sync.Mutex
	n  int
}

// BTable shards bshard.
type BTable struct {
	shards []bshard
}

// Rebalance nests across shards under an explicit, reasoned allow.
func (b *BTable) Rebalance(i, j int) {
	b.shards[i].mu.Lock()
	defer b.shards[i].mu.Unlock()
	//overhaul:allow lockordercheck rebalance holds both shards by design; callers serialize through the table owner
	b.shards[j].mu.Lock()
	defer b.shards[j].mu.Unlock()
	b.shards[i].n, b.shards[j].n = b.shards[j].n, b.shards[i].n
}
