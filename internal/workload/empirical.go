package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"overhaul/internal/apps"
	"overhaul/internal/core"
	"overhaul/internal/devfs"
	"overhaul/internal/malware"
	"overhaul/internal/monitor"
	"overhaul/internal/xserver"
)

// EmpiricalConfig parameterises the §V-D experiment.
type EmpiricalConfig struct {
	Days int   // zero selects 21, the paper's duration
	Seed int64 // drives the user activity and malware schedule
}

// MachineReport summarises one machine after the experiment.
type MachineReport struct {
	Protected bool `json:"protected"`
	Days      int  `json:"days"`

	// Malware outcome.
	Malware malware.Report `json:"malware"`

	// Legitimate activity outcome.
	LegitGrants  map[monitor.Op]int `json:"legitGrants"`  // granted operations by legit apps
	LegitDenials int                `json:"legitDenials"` // false positives (must be 0)

	// DiskLootFiles is what a forensic inspection of the machine finds
	// in the sample's on-disk hiding place.
	DiskLootFiles int `json:"diskLootFiles"`
}

// EmpiricalReport pairs the two machines.
type EmpiricalReport struct {
	ProtectedMachine   MachineReport `json:"protectedMachine"`
	UnprotectedMachine MachineReport `json:"unprotectedMachine"`
}

// ErrEmpirical wraps environment failures.
var ErrEmpirical = errors.New("workload: empirical run failed")

// RunEmpirical reproduces the 21-day experiment: identical daily
// activity and spyware schedules run on an Overhaul machine and an
// unmodified one; the report compares what the malware collected and
// whether any legitimate application was ever blocked.
func RunEmpirical(cfg EmpiricalConfig) (EmpiricalReport, error) {
	days := cfg.Days
	if days <= 0 {
		days = 21
	}
	protected, err := runMachine(true, days, cfg.Seed)
	if err != nil {
		return EmpiricalReport{}, fmt.Errorf("%w: protected: %v", ErrEmpirical, err)
	}
	unprotected, err := runMachine(false, days, cfg.Seed)
	if err != nil {
		return EmpiricalReport{}, fmt.Errorf("%w: unprotected: %v", ErrEmpirical, err)
	}
	return EmpiricalReport{ProtectedMachine: protected, UnprotectedMachine: unprotected}, nil
}

// machine bundles the long-running simulated desktop.
type machine struct {
	sys      *core.System
	mic, cam string
	video    *apps.VideoConf
	shot     *apps.Screenshot
	recorder *apps.Recorder
	pwMgr    *apps.Editor
	mail     *apps.Editor
	spy      *malware.Spyware
	report   MachineReport
}

// runMachine drives one machine for the full duration.
func runMachine(protected bool, days int, seed int64) (MachineReport, error) {
	rng := rand.New(rand.NewSource(seed))
	sys, err := core.Boot(core.Options{Enforce: protected, AlertSecret: "tabby-cat"})
	if err != nil {
		return MachineReport{}, err
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		return MachineReport{}, err
	}
	cam, err := sys.Helper.Attach(devfs.ClassCamera)
	if err != nil {
		return MachineReport{}, err
	}

	m := &machine{sys: sys, mic: mic, cam: cam}
	m.report = MachineReport{
		Protected:   protected,
		Days:        days,
		LegitGrants: make(map[monitor.Op]int),
	}
	if m.video, err = apps.NewVideoConf(sys, "jitsi", mic, cam, false); err != nil {
		return MachineReport{}, err
	}
	if m.shot, err = apps.NewScreenshot(sys, "gnome-screenshot"); err != nil {
		return MachineReport{}, err
	}
	if m.recorder, err = apps.NewRecorder(sys, "recordmydesktop", ""); err != nil {
		return MachineReport{}, err
	}
	if m.pwMgr, err = apps.NewEditor(sys, "keepassx"); err != nil {
		return MachineReport{}, err
	}
	if m.mail, err = apps.NewEditor(sys, "thunderbird"); err != nil {
		return MachineReport{}, err
	}
	sys.Settle(2 * xserver.DefaultVisibilityThreshold)
	if m.spy, err = malware.Install(sys, mic); err != nil {
		return MachineReport{}, err
	}

	for day := 0; day < days; day++ {
		if err := m.runDay(rng, protected); err != nil {
			return MachineReport{}, fmt.Errorf("day %d: %v", day+1, err)
		}
	}
	m.report.Malware = m.spy.Report()
	files, err := m.spy.DiskLoot()
	if err != nil {
		return MachineReport{}, err
	}
	m.report.DiskLootFiles = len(files)
	return m.report, nil
}

// runDay simulates one day of mixed legitimate use and spying.
func (m *machine) runDay(rng *rand.Rand, protected bool) error {
	// Morning: a video call.
	if err := m.video.PlaceCall(); err != nil {
		m.report.LegitDenials++
	} else {
		m.report.LegitGrants[monitor.OpMic]++
		m.report.LegitGrants[monitor.OpCam]++
	}
	m.hoursPass(rng, 2)

	// The user copies a password from the password manager into email.
	secret := fmt.Sprintf("pw-%04d", rng.Intn(10000))
	if err := m.pwMgr.Copy([]byte(secret)); err != nil {
		m.report.LegitDenials++
	} else if _, err := m.mail.Paste(m.pwMgr); err != nil {
		m.report.LegitDenials++
	} else {
		m.report.LegitGrants[monitor.OpCopy]++
		m.report.LegitGrants[monitor.OpPaste]++
	}
	m.hoursPass(rng, 3)

	// Afternoon: a screenshot and some desktop recording.
	if _, err := m.shot.Capture(); err != nil {
		m.report.LegitDenials++
	} else {
		m.report.LegitGrants[monitor.OpScreen]++
	}
	if err := m.recorder.Record(); err != nil {
		m.report.LegitDenials++
	} else {
		m.report.LegitGrants[monitor.OpScreen]++
	}

	// The spyware fires several times a day at random points. On the
	// unprotected machine the display server has no policy, so the
	// clipboard owner serves it data like any other client.
	attempts := 3 + rng.Intn(3)
	for i := 0; i < attempts; i++ {
		m.hoursPass(rng, 1)
		// The password manager serves the selection like any X client
		// would; under Overhaul it is never even asked, because the
		// spyware's ConvertSelection is denied first.
		m.spy.StealClipboard(m.pwMgr.ServePaste)
		m.spy.StealScreen()
		m.spy.StealAudio()
	}
	m.hoursPass(rng, 10) // overnight
	return nil
}

// hoursPass advances simulated time by roughly the given hours.
func (m *machine) hoursPass(rng *rand.Rand, hours int) {
	jitter := time.Duration(rng.Intn(3600)) * time.Second
	m.sys.Settle(time.Duration(hours)*time.Hour + jitter)
}
