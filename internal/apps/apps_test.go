package apps

import (
	"errors"
	"testing"
	"time"

	"overhaul/internal/core"
	"overhaul/internal/monitor"
	"overhaul/internal/xserver"
)

func boot(t *testing.T) (*core.System, string, string) {
	t.Helper()
	sys, mic, cam, err := core.BootDefault()
	if err != nil {
		t.Fatalf("BootDefault: %v", err)
	}
	return sys, mic, cam
}

// settle ages freshly mapped windows past the visibility threshold.
func settle(sys *core.System) {
	sys.Settle(2 * xserver.DefaultVisibilityThreshold)
}

func TestVideoConfCallWorks(t *testing.T) {
	sys, mic, cam := boot(t)
	v, err := NewVideoConf(sys, "skype", mic, cam, false)
	if err != nil {
		t.Fatalf("NewVideoConf: %v", err)
	}
	settle(sys)
	if err := v.PlaceCall(); err != nil {
		t.Fatalf("PlaceCall: %v", err)
	}
	// Mic and cam alerts were shown.
	if got := len(sys.X.AlertHistory()); got != 2 {
		t.Fatalf("alerts = %d, want 2", got)
	}
}

func TestVideoConfAutostartProbeDeniedButHarmless(t *testing.T) {
	// The §V-C Skype quirk: the startup camera probe (no interaction)
	// is denied, yet the subsequent user-initiated call succeeds.
	sys, mic, cam := boot(t)
	v, err := NewVideoConf(sys, "skype", mic, cam, true)
	if err != nil {
		t.Fatalf("NewVideoConf: %v", err)
	}
	// The probe got denied and audited.
	audit := sys.Kernel.Monitor().Audit()
	if len(audit) != 1 || audit[0].Verdict != monitor.VerdictDeny || audit[0].Op != monitor.OpCam {
		t.Fatalf("audit = %+v, want one camera denial", audit)
	}
	settle(sys)
	if err := v.PlaceCall(); err != nil {
		t.Fatalf("PlaceCall after denied probe: %v", err)
	}
}

func TestBrowserTabCameraViaShm(t *testing.T) {
	sys, _, cam := boot(t)
	b, err := NewBrowser(sys, "chromium")
	if err != nil {
		t.Fatalf("NewBrowser: %v", err)
	}
	tab, ch, err := b.OpenTab()
	if err != nil {
		t.Fatalf("OpenTab: %v", err)
	}
	settle(sys)
	// The forked tab inherited the browser's (empty) stamp; the click
	// goes to the *browser*, and P2 over shm must carry it to the tab.
	if err := b.StartVideoChat(tab, ch, cam); err != nil {
		t.Fatalf("StartVideoChat: %v", err)
	}
}

func TestBrowserTabWithoutClickBlocked(t *testing.T) {
	sys, _, cam := boot(t)
	b, err := NewBrowser(sys, "chromium")
	if err != nil {
		t.Fatalf("NewBrowser: %v", err)
	}
	tab, ch, err := b.OpenTab()
	if err != nil {
		t.Fatalf("OpenTab: %v", err)
	}
	settle(sys)
	// Tab opens the camera with no user interaction anywhere.
	_ = ch
	if _, err := sys.Kernel.Open(tab.Proc, cam, 1); err == nil {
		t.Fatal("tab camera open succeeded without any interaction")
	}
}

func TestLauncherFigure3(t *testing.T) {
	sys, _, _ := boot(t)
	l, err := NewLauncher(sys, "run")
	if err != nil {
		t.Fatalf("NewLauncher: %v", err)
	}
	victim, err := sys.Launch("bank")
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if err := victim.Client.Draw(victim.Win, []byte("statement")); err != nil {
		t.Fatalf("Draw: %v", err)
	}
	settle(sys)

	shotProc, err := l.Run("shot")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The spawned tool connects to X and captures the screen; the
	// interaction it inherited from the launcher makes this succeed.
	shotClient, err := sys.X.Connect(shotProc.PID(), "shot")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if _, err := shotClient.GetImage(xserver.Root); err != nil {
		t.Fatalf("spawned tool capture = %v, want grant via P1", err)
	}
}

func TestTerminalCLIFlow(t *testing.T) {
	sys, mic, _ := boot(t)
	term, err := NewTerminal(sys, "xterm")
	if err != nil {
		t.Fatalf("NewTerminal: %v", err)
	}
	settle(sys)
	tool, err := term.RunCommand("arecord demo.wav")
	if err != nil {
		t.Fatalf("RunCommand: %v", err)
	}
	if tool.Name() != "arecord" {
		t.Fatalf("tool name = %q", tool.Name())
	}
	if _, err := sys.Kernel.Open(tool, mic, 1); err != nil {
		t.Fatalf("CLI tool mic open = %v, want grant via pty propagation", err)
	}
}

func TestTerminalShellAloneHasNoPermissions(t *testing.T) {
	sys, mic, _ := boot(t)
	term, err := NewTerminal(sys, "xterm")
	if err != nil {
		t.Fatalf("NewTerminal: %v", err)
	}
	settle(sys)
	// The shell never received any pty traffic: no stamp.
	if _, err := sys.Kernel.Open(term.Shell(), mic, 1); err == nil {
		t.Fatal("idle shell opened the microphone")
	}
}

func TestScreenshotCaptureAndDelayedLimitation(t *testing.T) {
	sys, _, _ := boot(t)
	victim, err := sys.Launch("document")
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if err := victim.Client.Draw(victim.Win, []byte("page-1")); err != nil {
		t.Fatalf("Draw: %v", err)
	}
	shot, err := NewScreenshot(sys, "gnome-screenshot")
	if err != nil {
		t.Fatalf("NewScreenshot: %v", err)
	}
	settle(sys)

	img, err := shot.Capture()
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if len(img) == 0 {
		t.Fatal("empty capture")
	}

	// Delayed shot beyond δ: the documented limitation — it fails.
	if _, err := shot.CaptureDelayed(5 * time.Second); !errors.Is(err, ErrBlocked) {
		t.Fatalf("CaptureDelayed = %v, want ErrBlocked", err)
	}
	// A short delay under δ still works.
	if _, err := shot.CaptureDelayed(500 * time.Millisecond); err != nil {
		t.Fatalf("short CaptureDelayed = %v", err)
	}
}

func TestRecorderDeviceAndScreen(t *testing.T) {
	sys, mic, _ := boot(t)
	audio, err := NewRecorder(sys, "audacity", mic)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	desktop, err := NewRecorder(sys, "recordmydesktop", "")
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	settle(sys)
	if err := audio.Record(); err != nil {
		t.Fatalf("audio Record: %v", err)
	}
	if err := desktop.Record(); err != nil {
		t.Fatalf("desktop Record: %v", err)
	}
}

func TestEditorsCopyPaste(t *testing.T) {
	sys, _, _ := boot(t)
	src, err := NewEditor(sys, "libreoffice")
	if err != nil {
		t.Fatalf("NewEditor: %v", err)
	}
	dst, err := NewEditor(sys, "gedit")
	if err != nil {
		t.Fatalf("NewEditor: %v", err)
	}
	settle(sys)
	if err := src.Copy([]byte("quarterly numbers")); err != nil {
		t.Fatalf("Copy: %v", err)
	}
	got, err := dst.Paste(src)
	if err != nil {
		t.Fatalf("Paste: %v", err)
	}
	if string(got) != "quarterly numbers" {
		t.Fatalf("pasted %q", got)
	}
}

func TestEditorCopyWithoutKeystrokeBlocked(t *testing.T) {
	sys, _, _ := boot(t)
	ed, err := NewEditor(sys, "gedit")
	if err != nil {
		t.Fatalf("NewEditor: %v", err)
	}
	settle(sys)
	// Bypass Copy(): call SetSelection directly with no keystroke.
	err = ed.App().Client.SetSelection("CLIPBOARD", ed.App().Win)
	if !errors.Is(err, xserver.ErrBadAccess) {
		t.Fatalf("SetSelection = %v, want ErrBadAccess", err)
	}
}

func TestGUITestingToolStillFunctions(t *testing.T) {
	// §IV-A acknowledges legitimate uses of synthetic input (GUI
	// testing tools). Under Overhaul the events are still *delivered* —
	// automation keeps driving the UI — they just never mint trust.
	sys, mic, _ := boot(t)
	target, err := sys.LaunchAt("app-under-test", 100, 100, 200, 200)
	if err != nil {
		t.Fatalf("LaunchAt: %v", err)
	}
	robot, err := sys.LaunchAt("x11-test-robot", 600, 600, 50, 50)
	if err != nil {
		t.Fatalf("LaunchAt: %v", err)
	}
	settle(sys)

	// The robot drives the target with XTest clicks; the target reacts
	// to each event (functionality preserved).
	for i := 0; i < 5; i++ {
		win, err := robot.Client.XTestFakeInput(xserver.Event{
			Type: xserver.ButtonPress, X: 150, Y: 150,
		})
		if err != nil {
			t.Fatalf("XTestFakeInput: %v", err)
		}
		if win != target.Win {
			t.Fatalf("xtest click dispatched to %d, want %d", win, target.Win)
		}
	}
	if got := target.Client.PendingEvents(); got != 5 {
		t.Fatalf("target received %d events, want 5 (automation must keep working)", got)
	}
	// But the synthetic clicks minted no authority for anyone.
	if _, err := target.OpenDevice(mic); err == nil {
		t.Fatal("synthetic automation unlocked the microphone")
	}
}
