package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// Failclosedcheck enforces the degradation contract (DESIGN.md §9,
// paper §V): once an operation has entered mediation, an error path
// that aborts the decision must fail closed — record the denial
// (RecordDenial/RecordDenialCtx), flip degraded mode (SetDegraded),
// or complete the decision (Decide/DecideCtx audit internally) —
// before the error is surfaced. The check is scoped to the trust-seam
// packages (kernel, monitor, netlink) and to "decision functions":
// those that call Decide/DecideCtx somewhere in their body.
//
// The path model is positional, not a CFG: an error return is covered
// when some fail-closed call lies between the first mediation marker
// (SensitiveClassOf/Eval/Decide/DecideCtx) and the return. Returns
// before mediation begins (a plain open failing before the decision
// is ever consulted) are exempt. Calls count as fail-closed either by
// name or through the interprocedural FailsClosed fact — a helper
// that transitively records denials covers its callers' paths too.
// The positional model can miss a handler hidden in a sibling branch
// (false positive, suppressible with a reason) but never blesses a
// path with no handler anywhere after mediation began.
var Failclosedcheck = &Analyzer{
	Name:       "failclosedcheck",
	NeedsTypes: true,
	Doc: "error paths that abort a mediated decision in kernel/monitor/netlink " +
		"must record a denial or degrade before returning",
	Run: runFailclosedcheck,
}

// mediationMarkers begin a mediated operation.
var mediationMarkers = map[string]bool{
	"SensitiveClassOf": true,
	"Eval":             true,
	"Decide":           true,
	"DecideCtx":        true,
}

// decisionCallNames mark a function as a decision function.
var decisionCallNames = map[string]bool{
	"Decide":    true,
	"DecideCtx": true,
}

// failClosedScope lists the trust-seam package basenames the analyzer
// applies to.
var failClosedScope = map[string]bool{
	"kernel":  true,
	"monitor": true,
	"netlink": true,
}

func runFailclosedcheck(pass *Pass) {
	if !failClosedScope[path.Base(pass.Pkg.Dir)] {
		return
	}
	ti := pass.TypeInfo()
	facts := pass.Facts()
	if ti == nil || ti.Info == nil || facts == nil {
		return
	}
	info := ti.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(f.Name) {
			continue
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDecisionFunc(pass, info, facts, fn)
		}
	}
}

// typedCalleeName resolves the bare name of a call's target, "" when
// the call cannot be resolved (function values, conversions).
func typedCalleeName(info *types.Info, call *ast.CallExpr) string {
	if fn, _, ok := calleeObject(info, call); ok {
		return fn.Name()
	}
	return ""
}

// checkDecisionFunc applies the positional coverage rule to one
// decision function.
func checkDecisionFunc(pass *Pass, info *types.Info, facts *ModuleFacts, fn *ast.FuncDecl) {
	isDecision := false
	marker := token.Pos(-1)
	var handlers []token.Pos

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := typedCalleeName(info, call)
		if name == "" {
			return true
		}
		if decisionCallNames[name] {
			isDecision = true
		}
		if mediationMarkers[name] {
			if marker == token.Pos(-1) || call.Pos() < marker {
				marker = call.Pos()
			}
		}
		if failClosedNames[name] {
			handlers = append(handlers, call.Pos())
			return true
		}
		// Interprocedural: a callee that transitively records
		// denials/degradation covers the path too.
		for _, key := range facts.CallGraph().resolveCall(info, call) {
			if ff := facts.FuncFactByKey(key); ff != nil && ff.FailsClosed {
				handlers = append(handlers, call.Pos())
				break
			}
		}
		return true
	})
	if !isDecision || marker == token.Pos(-1) {
		return
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() < marker {
			return true // mediation had not begun on this path
		}
		if !returnsNonNilError(info, ret) {
			return true
		}
		covered := false
		for _, h := range handlers {
			if h >= marker && h <= ret.End() {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(ret.Pos(),
				"error return aborts a mediated decision without fail-closed handling (no RecordDenial/SetDegraded on the path from mediation start to this return)")
		}
		return true
	})
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// returnsNonNilError reports whether the return statement carries a
// result whose type satisfies error and is not the nil literal.
func returnsNonNilError(info *types.Info, ret *ast.ReturnStmt) bool {
	for _, e := range ret.Results {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil || tv.IsNil() {
			continue
		}
		if !types.Implements(tv.Type, errorIface) {
			continue
		}
		if id, isIdent := ast.Unparen(e).(*ast.Ident); isIdent && id.Name == "nil" {
			continue
		}
		return true
	}
	return false
}
