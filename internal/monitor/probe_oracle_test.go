package monitor

// The probe ≡ audit oracle: a match-all probe on the kernel.decide
// attach point must observe exactly the decision stream the audit log
// records — same order, same fields, byte-identical rendered lines —
// with the single documented exception that a degraded denial's cause
// is elided from the fixed-size probe event. This pins the probe layer
// as a faithful, lossless view of the decision path (satellite c of
// the probe-layer issue) and pins the interned reason texts against
// the policy's exported constants.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/probe"
)

// auditLine renders a Decision the way probe.Event.Format renders the
// corresponding event, from the audit record alone.
func auditLine(d Decision, threshold time.Duration) string {
	stamp := int64(0)
	if !d.Stamp.IsZero() {
		stamp = d.Stamp.UnixNano()
	}
	reason := d.Reason
	if strings.HasPrefix(reason, "protection degraded: ") {
		// The probe event interns the degraded reason without its
		// dynamic cause.
		reason = "protection degraded: (cause elided)"
	}
	return fmt.Sprintf("decide pid=%d session=0 dev=%s verdict=%s t=%d stamp=%d reason=%s",
		d.PID, string(d.Op), d.Verdict.String(), d.OpTime.UnixNano(), stamp, reason)
}

func TestProbeDecideStreamMatchesAuditOracle(t *testing.T) {
	clk := clock.NewSimulated()
	tasks := newFakeTasks()
	for _, pid := range []int{1, 2, 3} {
		tasks.add(pid)
	}
	reg := probe.NewRegistry()
	ring := probe.NewRing(1024)
	if _, err := reg.AttachSpec("hook=kernel.decide", ring); err != nil {
		t.Fatal(err)
	}
	m, err := New(clk, tasks, Config{Enforce: true, Probes: reg})
	if err != nil {
		t.Fatal(err)
	}

	// A single-goroutine script walking every decision shape the
	// policy can produce.
	now := clk.Now()
	if err := m.Notify(1, now); err != nil {
		t.Fatal(err)
	}
	m.Decide(1, OpMic, now.Add(time.Millisecond)) // grant: within δ
	m.Decide(2, OpCam, now)                       // deny: no interaction
	m.Decide(99, OpScreen, now)                   // deny: no such process
	tasks.disabled[3] = true
	m.Decide(3, OpPaste, now) // deny: ptrace guard
	tasks.disabled[3] = false
	clk.Advance(5*time.Second + 250*time.Millisecond)
	later := clk.Now()
	m.Decide(1, OpCopy, later) // deny: stale by 3.25s
	if err := m.Notify(3, later); err != nil {
		t.Fatal(err)
	}
	m.Decide(3, OpMic, later.Add(-time.Millisecond)) // grant: stamp after op
	m.SetDegraded("channel dead")
	m.Decide(1, OpOther, later) // deny: degraded (cause elided)
	m.ClearDegraded()
	m.RecordDenial(2, OpOther, later, "transient open failure: fail closed")

	decisions := m.Audit()
	buf := make([]probe.Event, 1024)
	n := ring.ReadBatch(buf)
	if n != len(decisions) {
		t.Fatalf("probe saw %d events, audit has %d records", n, len(decisions))
	}
	if n != 8 {
		t.Fatalf("script produced %d decisions, want 8", n)
	}
	for i := 0; i < n; i++ {
		got := buf[i].Format(m.Threshold())
		want := auditLine(decisions[i], m.Threshold())
		if got != want {
			t.Errorf("record %d:\nprobe %q\naudit %q", i, got, want)
		}
	}
}

// TestProbeReasonTextsMatchPolicy pins the probe layer's interned
// reason texts against the policy's exported constants: if a policy
// reason is ever reworded, the probe must follow or this fails.
func TestProbeReasonTextsMatchPolicy(t *testing.T) {
	for _, s := range []string{
		ReasonForceGrant, ReasonObserveOnly, ReasonNoSuchProcess,
		ReasonPtraceGuard, ReasonNoInteraction, ReasonStampAfterOp,
		ReasonWithinDelta,
	} {
		code := probe.ReasonOf(s)
		if code == probe.ReasonOther || code == probe.ReasonNone {
			t.Errorf("policy reason %q has no probe intern code", s)
			continue
		}
		ev := probe.Event{Reason: code}
		if got := ev.ReasonText(DefaultThreshold); got != s {
			t.Errorf("probe renders %v as %q, policy says %q", code, got, s)
		}
	}
	// The two dynamic reasons: prefix-interned.
	if probe.ReasonOf("protection degraded: x") != probe.ReasonDegraded {
		t.Error("degraded prefix not interned")
	}
	pol := Policy{Threshold: 2 * time.Second, Enforce: true}
	stamp := time.Unix(100, 0)
	op := stamp.Add(5*time.Second + 250*time.Millisecond)
	_, reason := pol.Evaluate(Query{OpTime: op, Stamp: stamp, Exists: true})
	if probe.ReasonOf(reason) != probe.ReasonStale {
		t.Errorf("stale reason %q not interned", reason)
	}
	ev := probe.Event{Reason: probe.ReasonStale, TimeNanos: op.UnixNano(), StampNanos: stamp.UnixNano()}
	if got := ev.ReasonText(pol.Threshold); got != reason {
		t.Errorf("stale reconstruction %q != policy %q", got, reason)
	}
}
