package core

import (
	"errors"
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/devfs"
	"overhaul/internal/fs"
	"overhaul/internal/kernel"
	"overhaul/internal/monitor"
	"overhaul/internal/xserver"
)

func bootDefault(t *testing.T) (*System, string, string) {
	t.Helper()
	sys, mic, cam, err := BootDefault()
	if err != nil {
		t.Fatalf("BootDefault: %v", err)
	}
	return sys, mic, cam
}

// launchSettled launches an app and ages its window past the visibility
// threshold.
func launchSettled(t *testing.T, sys *System, name string) *App {
	t.Helper()
	app, err := sys.Launch(name)
	if err != nil {
		t.Fatalf("Launch(%s): %v", name, err)
	}
	sys.Settle(2 * xserver.DefaultVisibilityThreshold)
	return app
}

func TestBootWiresEverything(t *testing.T) {
	sys, mic, cam := bootDefault(t)
	if !sys.Enforcing() || !sys.X.Protected() {
		t.Fatal("system not enforcing")
	}
	if mic == "" || cam == "" {
		t.Fatal("devices not attached")
	}
	if !sys.Hub().Connected(sys.XProcess().PID()) {
		t.Fatal("X not connected to netlink")
	}
	if _, ok := sys.SimClock(); !ok {
		t.Fatal("default clock not simulated")
	}
}

func TestEndToEndMicrophoneFlow(t *testing.T) {
	// The Figure 1 flow across the real assembly: click → netlink
	// notification → device open → monitor grant → netlink alert.
	sys, mic, _ := bootDefault(t)
	app := launchSettled(t, sys, "skype")

	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(100 * time.Millisecond)
	if _, err := app.OpenDevice(mic); err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}
	alerts := sys.X.ActiveAlerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v, want 1", alerts)
	}
	if alerts[0].Op != monitor.OpMic || alerts[0].PID != app.Proc.PID() {
		t.Fatalf("alert = %+v", alerts[0])
	}
	if !sys.X.AuthenticAlert(alerts[0]) {
		t.Fatal("alert lacks the shared secret")
	}
}

func TestEndToEndBackgroundSpywareBlocked(t *testing.T) {
	sys, mic, cam := bootDefault(t)
	spy, err := sys.LaunchHeadless("spyware")
	if err != nil {
		t.Fatalf("LaunchHeadless: %v", err)
	}
	for _, dev := range []string{mic, cam} {
		if _, err := sys.Kernel.Open(spy, dev, fs.AccessRead); !errors.Is(err, kernel.ErrAccessDenied) {
			t.Fatalf("spyware open %s = %v, want denied", dev, err)
		}
	}
	// Blocked device attempts raise "blocked" alerts so the user
	// learns of the undesired access (§V-B scenario).
	alerts := sys.X.ActiveAlerts()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %+v, want 2 blocked alerts", alerts)
	}
	for _, a := range alerts {
		if !a.Blocked {
			t.Fatalf("alert not marked blocked: %+v", a)
		}
	}
	// But the audit log has both denials.
	audit := sys.Kernel.Monitor().Audit()
	if len(audit) != 2 {
		t.Fatalf("audit = %+v", audit)
	}
	for _, d := range audit {
		if d.Verdict != monitor.VerdictDeny {
			t.Fatalf("audit verdict = %v", d.Verdict)
		}
	}
}

func TestEndToEndClipboardFlow(t *testing.T) {
	sys, _, _ := bootDefault(t)
	srcApp := launchSettled(t, sys, "editor")
	tgtApp := launchSettled(t, sys, "terminal")

	// Copy with user input.
	if err := srcApp.Type("ctrl+c"); err != nil {
		t.Fatalf("Type: %v", err)
	}
	if err := srcApp.Client.SetSelection("CLIPBOARD", srcApp.Win); err != nil {
		t.Fatalf("SetSelection: %v", err)
	}
	// Paste with user input.
	if err := tgtApp.Type("ctrl+v"); err != nil {
		t.Fatalf("Type: %v", err)
	}
	if err := tgtApp.Client.ConvertSelection("CLIPBOARD", "UTF8_STRING", "SEL", tgtApp.Win); err != nil {
		t.Fatalf("ConvertSelection: %v", err)
	}
	// A background sniffer is refused.
	sniffer := launchSettled(t, sys, "sniffer")
	err := sniffer.Client.ConvertSelection("CLIPBOARD", "UTF8_STRING", "X", sniffer.Win)
	if !errors.Is(err, xserver.ErrBadAccess) {
		t.Fatalf("sniffer ConvertSelection = %v, want ErrBadAccess", err)
	}
}

func TestEndToEndScreenCaptureAlert(t *testing.T) {
	sys, _, _ := bootDefault(t)
	victim := launchSettled(t, sys, "bank")
	if err := victim.Client.Draw(victim.Win, []byte("account 12345")); err != nil {
		t.Fatalf("Draw: %v", err)
	}
	shot := launchSettled(t, sys, "screenshot")
	if err := shot.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	img, err := shot.Client.GetImage(xserver.Root)
	if err != nil {
		t.Fatalf("GetImage: %v", err)
	}
	if len(img) == 0 {
		t.Fatal("empty capture")
	}
	alerts := sys.X.ActiveAlerts()
	if len(alerts) != 1 || alerts[0].Op != monitor.OpScreen {
		t.Fatalf("alerts = %+v, want screen alert", alerts)
	}
}

func TestObserveOnlySystemGrantsButLogs(t *testing.T) {
	// The unprotected §V-D machine: observe-only, everything granted.
	sys, err := Boot(Options{Enforce: false})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if sys.X.Protected() {
		t.Fatal("observe-only system has a protected display server")
	}
	spy, err := sys.LaunchHeadless("spyware")
	if err != nil {
		t.Fatalf("LaunchHeadless: %v", err)
	}
	if _, err := sys.Kernel.Open(spy, mic, fs.AccessRead); err != nil {
		t.Fatalf("observe-only open = %v, want grant", err)
	}
	audit := sys.Kernel.Monitor().Audit()
	if len(audit) != 1 || audit[0].Verdict != monitor.VerdictGrant {
		t.Fatalf("audit = %+v", audit)
	}
}

func TestForceGrantSystem(t *testing.T) {
	sys, err := Boot(Options{Enforce: true, ForceGrant: true})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	spy, err := sys.LaunchHeadless("bench")
	if err != nil {
		t.Fatalf("LaunchHeadless: %v", err)
	}
	if _, err := sys.Kernel.Open(spy, mic, fs.AccessRead); err != nil {
		t.Fatalf("force-grant open = %v", err)
	}
}

func TestNetlinkRejectsImpostor(t *testing.T) {
	sys, _, _ := bootDefault(t)
	// A user process pretending to be the display server cannot join
	// the channel: the kernel introspects its executable path.
	mal, err := sys.LaunchHeadless("fake-xorg")
	if err != nil {
		t.Fatalf("LaunchHeadless: %v", err)
	}
	if _, err := sys.Hub().Connect(mal.PID(), nil); err == nil {
		t.Fatal("impostor connected to the kernel channel")
	}
}

func TestCustomThresholdOption(t *testing.T) {
	clk := clock.NewSimulated()
	sys, err := Boot(Options{Clock: clk, Enforce: true, Threshold: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	app := launchSettled(t, sys, "app")
	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(700 * time.Millisecond) // beyond custom δ
	if _, err := app.OpenDevice(mic); !errors.Is(err, kernel.ErrAccessDenied) {
		t.Fatalf("open beyond custom δ = %v, want deny", err)
	}
}

func TestLaunchAndExitLifecycle(t *testing.T) {
	sys, _, _ := bootDefault(t)
	app := launchSettled(t, sys, "shortlived")
	pid := app.Proc.PID()
	if err := app.Exit(); err != nil {
		t.Fatalf("Exit: %v", err)
	}
	if _, err := sys.Kernel.Process(pid); !errors.Is(err, kernel.ErrNoSuchProcess) {
		t.Fatalf("process survives exit: %v", err)
	}
	if len(sys.X.WindowIDs()) != 0 {
		t.Fatal("window survives exit")
	}
}

func TestTypeRequiresOwnWindowFocus(t *testing.T) {
	sys, _, _ := bootDefault(t)
	app := launchSettled(t, sys, "app")
	if err := app.Type("a"); err != nil {
		t.Fatalf("Type: %v", err)
	}
	ev, ok := app.Client.NextEvent()
	if !ok || ev.Key != "a" || ev.Provenance != xserver.FromHardware {
		t.Fatalf("event = %+v", ev)
	}
}

func TestSyntheticInputCannotUnlockDevices(t *testing.T) {
	// S2 across the full stack: malware uses XTest to "click" on a
	// victim app, then the *victim* opens the mic. Because the event is
	// synthetic, no interaction was recorded and the open fails.
	sys, mic, _ := bootDefault(t)
	victim := launchSettled(t, sys, "recorder")
	mal := launchSettled(t, sys, "malware")

	if _, err := mal.Client.XTestFakeInput(xserver.Event{
		Type: xserver.ButtonPress, X: victim.x, Y: victim.y,
	}); err != nil {
		t.Fatalf("XTestFakeInput: %v", err)
	}
	if _, err := victim.OpenDevice(mic); !errors.Is(err, kernel.ErrAccessDenied) {
		t.Fatalf("victim open after synthetic click = %v, want deny", err)
	}

	// SendEvent path likewise.
	if err := mal.Client.SendEvent(victim.Win, xserver.Event{Type: xserver.KeyPress, Key: "enter"}); err != nil {
		t.Fatalf("SendEvent: %v", err)
	}
	if _, err := victim.OpenDevice(mic); !errors.Is(err, kernel.ErrAccessDenied) {
		t.Fatalf("victim open after send-event = %v, want deny", err)
	}

	// A real hardware click, by contrast, unlocks it.
	if err := victim.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	if _, err := victim.OpenDevice(mic); err != nil {
		t.Fatalf("victim open after real click = %v, want grant", err)
	}
}

func TestBootOptionMatrix(t *testing.T) {
	// Every option combination must boot and keep the direct
	// click->open flow working (or observe-only granting).
	cases := []Options{
		{Enforce: true},
		{Enforce: false},
		{Enforce: true, ForceGrant: true},
		{Enforce: true, Threshold: time.Second},
		{Enforce: true, VisibilityThreshold: 100 * time.Millisecond},
		{Enforce: true, ShmWait: 50 * time.Millisecond},
		{Enforce: true, DisablePtraceGuard: true},
		{Enforce: true, DisableXTest: true},
		{Enforce: true, DisableP1: true},
		{Enforce: true, DisableP2: true},
		{Enforce: true, WireWork: 1, DeviceInitRounds: 1, StorageRounds: 1},
	}
	for i, opts := range cases {
		opts.AlertSecret = "matrix"
		sys, err := Boot(opts)
		if err != nil {
			t.Fatalf("case %d: Boot: %v", i, err)
		}
		mic, err := sys.AttachDevice(devfs.ClassMicrophone)
		if err != nil {
			t.Fatalf("case %d: AttachDevice: %v", i, err)
		}
		app := launchSettled(t, sys, "app")
		if err := app.Click(); err != nil {
			t.Fatalf("case %d: Click: %v", i, err)
		}
		sys.Settle(50 * time.Millisecond)
		if _, err := app.OpenDevice(mic); err != nil {
			t.Fatalf("case %d (%+v): direct open = %v, want grant", i, opts, err)
		}
	}
}
