package analysis

import (
	"go/ast"
	"go/token"
)

// Atomiccheck flags mixed atomic/plain access to the same struct field.
//
// The decision-path refactor moved the kernel's and monitor's shared
// counters and stamps to sync/atomic; the one way to silently undo that
// work is a method that reads or writes such a field with a plain load
// or store. A plain access beside atomic ones is a data race the race
// detector only catches when a test happens to interleave the two, so
// the invariant is checked statically: within a package, a field of a
// named type that any method accesses through a sync/atomic function
// (atomic.AddUint64(&r.f, 1) and friends) must be accessed that way in
// every method. Typed atomics (atomic.Int64 et al.) are immune by
// construction — a plain access to them does not compile — so the rule
// only bites the pointer-style API, where the compiler cannot help.
//
// The analysis is receiver-keyed and syntactic, like the rest of the
// suite: it looks at methods of the same local type across the
// package's non-test files and matches accesses through the receiver
// identifier.
var Atomiccheck = &Analyzer{
	Name: "atomiccheck",
	Doc: "a field accessed through sync/atomic in one method must be accessed " +
		"atomically everywhere: mixed atomic/plain access races",
	Run: runAtomiccheck,
}

// atomicFieldKey identifies a field receiver-keyed: the same field name
// on two different types is two different keys.
type atomicFieldKey struct {
	typ   string
	field string
}

func runAtomiccheck(pass *Pass) {
	atomicFields := make(map[atomicFieldKey]bool)
	type plainUse struct {
		key    atomicFieldKey
		pos    token.Pos
		method string
	}
	var plains []plainUse

	for _, f := range pass.Pkg.Files {
		if isTestFile(f.Name) {
			continue
		}
		atomicName := importName(f.AST, "sync/atomic")
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
				continue
			}
			tname := localTypeName(fn.Recv.List[0].Type)
			recvName := fn.Recv.List[0].Names[0].Name
			if tname == "" || recvName == "_" {
				continue
			}

			// First sweep: &recv.field arguments to sync/atomic calls
			// mark the field atomic and exempt those sites from the
			// plain-access sweep below.
			atomicArg := make(map[*ast.SelectorExpr]bool)
			if atomicName != "" {
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					qual, _, ok := selectorCall(call)
					if !ok || qual != atomicName {
						return true
					}
					for _, arg := range call.Args {
						un, ok := arg.(*ast.UnaryExpr)
						if !ok || un.Op != token.AND {
							continue
						}
						sel, ok := un.X.(*ast.SelectorExpr)
						if !ok {
							continue
						}
						if id, ok := sel.X.(*ast.Ident); ok && id.Name == recvName {
							atomicFields[atomicFieldKey{tname, sel.Sel.Name}] = true
							atomicArg[sel] = true
						}
					}
					return true
				})
			}

			// Second sweep: every other recv.field selector is a plain
			// access candidate; it is judged once the whole package has
			// been seen, since the atomic use may live in another file.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicArg[sel] {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != recvName {
					return true
				}
				plains = append(plains, plainUse{
					key:    atomicFieldKey{tname, sel.Sel.Name},
					pos:    sel.Pos(),
					method: fn.Name.Name,
				})
				return true
			})
		}
	}

	for _, p := range plains {
		if atomicFields[p.key] {
			pass.Reportf(p.pos, "field %s.%s is accessed with sync/atomic elsewhere but plainly in %s: mixed atomic/plain access races",
				p.key.typ, p.key.field, p.method)
		}
	}
}
