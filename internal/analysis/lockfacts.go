package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// Lock-order facts. Every named struct carrying a sync.Mutex/RWMutex
// is a lock class; classes that are the element type of an array or
// slice field anywhere in the module (the kernel's process-table
// shards, the monitor's audit rings) are "sharded": the runtime holds
// one instance per shard and the locking convention is
// one-at-a-time, so acquiring the class while an instance is already
// held is a cross-shard acquisition — an ordering hazard unless done
// in a globally agreed order, which this codebase deliberately avoids
// by never nesting them. scanLocks walks each function linearly,
// tracking the held multiset (defer'd unlocks keep a lock held to the
// end), and records held→acquired edges both for direct acquisitions
// and through calls, using callee Acquires facts. lockordercheck
// turns self-edges on sharded classes and cross-class cycles into
// findings.

// heldLock is one acquisition on the tracking stack.
type heldLock struct {
	class string
	read  bool // RLock rather than Lock
}

// isMutexType reports whether t (after pointer deref) is sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// namedStructOf unwraps t (through one pointer) to a named type whose
// underlying is a struct.
func namedStructOf(t types.Type) (*types.Named, *types.Struct) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return n, st
}

// structHasMutex reports whether st carries a mutex field (including an
// embedded one).
func structHasMutex(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// namedKey renders a named type as pkgpath.Name.
func namedKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// collectLockClasses walks every typed package's named struct types,
// registering field owners (for fact keys) and building the lock-class
// table, then marks classes that shard (element of an array/slice
// field).
func (st *taintState) collectLockClasses() {
	for _, pkg := range st.m.PackagesInDependencyOrder() {
		ti := st.m.TypeInfoFor(pkg)
		if ti == nil || ti.Pkg == nil {
			continue
		}
		scope := ti.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			n, structType := namedStructOf(tn.Type())
			if structType == nil {
				continue
			}
			registerOwner(tn.Name(), structType)
			if structHasMutex(structType) {
				key := namedKey(n)
				if st.classes[key] == nil {
					st.classes[key] = &lockClass{key: key}
				}
			}
		}
	}
	// Sharded detection: element types of array/slice fields.
	for _, pkg := range st.m.PackagesInDependencyOrder() {
		ti := st.m.TypeInfoFor(pkg)
		if ti == nil || ti.Pkg == nil {
			continue
		}
		scope := ti.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			_, structType := namedStructOf(tn.Type())
			if structType == nil {
				continue
			}
			for i := 0; i < structType.NumFields(); i++ {
				var elem types.Type
				switch ft := structType.Field(i).Type().Underlying().(type) {
				case *types.Array:
					elem = ft.Elem()
				case *types.Slice:
					elem = ft.Elem()
				default:
					continue
				}
				if n, est := namedStructOf(elem); est != nil && structHasMutex(est) {
					if c := st.classes[namedKey(n)]; c != nil {
						c.sharded = true
					}
				}
			}
		}
	}
}

// lockMethodNames classifies the sync mutex API.
var lockMethodNames = map[string]struct{ acquire, read bool }{
	"Lock":    {acquire: true},
	"RLock":   {acquire: true, read: true},
	"Unlock":  {},
	"RUnlock": {read: true},
}

// lockClassOf resolves the lock class of a mutex-method call
// (x.Lock(), s.mu.Lock(), k.shards[i].mu.Lock()). Returns "" when the
// call is not a sync mutex operation or the class cannot be named.
func (st *taintState) lockClassOf(info *types.Info, call *ast.CallExpr) (class string, op struct{ acquire, read bool }, ok bool) {
	fun, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", op, false
	}
	op, isLockMethod := lockMethodNames[fun.Sel.Name]
	if !isLockMethod {
		return "", op, false
	}
	// Require the resolved method to come from package sync, so
	// Lock/Unlock methods on unrelated types don't register.
	sel, found := info.Selections[fun]
	if !found {
		return "", op, false
	}
	fn, isFn := sel.Obj().(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", op, false
	}

	x := ast.Unparen(fun.X)
	// Field selection: the owning named struct is the class.
	if field := fieldObjOf(info, x); field != nil && isMutexType(field.Type()) {
		owner := fieldOwner(field)
		if field.Pkg() != nil {
			return field.Pkg().Path() + "." + owner, op, true
		}
		return owner, op, true
	}
	// Embedded mutex: the receiver's named struct type is the class.
	if tv, found := info.Types[x]; found {
		if n, structType := namedStructOf(tv.Type); structType != nil {
			return namedKey(n), op, true
		}
	}
	// Bare mutex variable: the variable itself is the class.
	if id, isIdent := x.(*ast.Ident); isIdent {
		if obj := info.Uses[id]; obj != nil {
			return objectKey(obj), op, true
		}
	}
	return "", op, false
}

// recordEdge notes a held→acquired pair, keeping the first observed
// position for reporting.
func (st *taintState) recordEdge(pkg *Package, fact *FuncFact, held heldLock, acquired heldLock, pos ast.Node) {
	if held.class == acquired.class && held.read && acquired.read {
		// Nested read locks on one class don't order against each
		// other; recording them would fabricate findings.
		return
	}
	e := LockEdge{Held: held.class, Acquired: acquired.class}
	if _, seen := st.edgePos[e]; !seen {
		st.edgePos[e] = reportSite{pkg: pkg, pos: pos.Pos()}
		st.changed = true
	}
	for _, have := range fact.LockEdges {
		if have == e {
			return
		}
	}
	fact.LockEdges = append(fact.LockEdges, e)
	st.changed = true
}

// addAcquire joins a class into the function's Acquires set.
func (st *taintState) addAcquire(fact *FuncFact, class string) {
	i := sort.SearchStrings(fact.Acquires, class)
	if i < len(fact.Acquires) && fact.Acquires[i] == class {
		return
	}
	fact.Acquires = append(fact.Acquires, "")
	copy(fact.Acquires[i+1:], fact.Acquires[i:])
	fact.Acquires[i] = class
	st.changed = true
}

// scanLocks performs the held-region walk of one function body.
func (st *taintState) scanLocks(pkg *Package, info *types.Info, set *FactSet, fact *FuncFact, fn *ast.FuncDecl) {
	st.scanLockStmts(pkg, info, fact, fn.Body.List, nil)
}

// scanLockStmts processes statements in order, threading the held
// stack through; nested control flow runs on a copy (a lock taken in a
// branch is assumed released there — the pairing analyzer in lockcheck
// polices that separately).
func (st *taintState) scanLockStmts(pkg *Package, info *types.Info, fact *FuncFact, stmts []ast.Stmt, held []heldLock) []heldLock {
	branch := func(body []ast.Stmt) {
		cp := append([]heldLock(nil), held...)
		st.scanLockStmts(pkg, info, fact, body, cp)
	}
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			held = st.scanLockExpr(pkg, info, fact, s.X, held, false)
		case *ast.DeferStmt:
			if class, op, ok := st.lockClassOf(info, s.Call); ok {
				if !op.acquire {
					// defer mu.Unlock(): held to end of function —
					// leave it on the stack.
					continue
				}
				held = st.acquire(pkg, info, fact, held, heldLock{class: class, read: op.read}, s.Call)
				continue
			}
			st.callWhileHeld(pkg, info, fact, s.Call, held)
		case *ast.GoStmt:
			// The spawned goroutine does not run under the caller's
			// locks; scan its target with an empty held set.
			st.callWhileHeld(pkg, info, fact, s.Call, nil)
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				st.scanLockStmts(pkg, info, fact, lit.Body.List, nil)
			}
		case *ast.IfStmt:
			if s.Init != nil {
				held = st.scanLockStmts(pkg, info, fact, []ast.Stmt{s.Init}, held)
			}
			held = st.scanLockExpr(pkg, info, fact, s.Cond, held, true)
			branch(s.Body.List)
			if s.Else != nil {
				branch([]ast.Stmt{s.Else})
			}
		case *ast.BlockStmt:
			held = st.scanLockStmts(pkg, info, fact, s.List, held)
		case *ast.ForStmt:
			branch(s.Body.List)
		case *ast.RangeStmt:
			held = st.scanLockExpr(pkg, info, fact, s.X, held, true)
			branch(s.Body.List)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					branch(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					branch(cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					branch(cc.Body)
				}
			}
		case *ast.LabeledStmt:
			held = st.scanLockStmts(pkg, info, fact, []ast.Stmt{s.Stmt}, held)
		default:
			// Assignments, returns, declarations: calls inside still
			// run while the current set is held.
			ast.Inspect(stmt, func(n ast.Node) bool {
				if _, isLit := n.(*ast.FuncLit); isLit {
					return false
				}
				if call, isCall := n.(*ast.CallExpr); isCall {
					st.callWhileHeld(pkg, info, fact, call, held)
				}
				return true
			})
			// Function literals get their own empty-held scan.
			ast.Inspect(stmt, func(n ast.Node) bool {
				if lit, isLit := n.(*ast.FuncLit); isLit {
					st.scanLockStmts(pkg, info, fact, lit.Body.List, nil)
					return false
				}
				return true
			})
		}
	}
	return held
}

// scanLockExpr handles an expression in statement position: mutex
// operations mutate the held stack, any other calls are checked
// against it. condOnly suppresses stack mutation (conditions cannot
// contain Lock calls, which return nothing, but scan defensively).
func (st *taintState) scanLockExpr(pkg *Package, info *types.Info, fact *FuncFact, e ast.Expr, held []heldLock, condOnly bool) []heldLock {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if isCall && !condOnly {
		if class, op, ok := st.lockClassOf(info, call); ok {
			if op.acquire {
				return st.acquire(pkg, info, fact, held, heldLock{class: class, read: op.read}, call)
			}
			return release(held, class)
		}
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok {
			st.callWhileHeld(pkg, info, fact, c, held)
		}
		return true
	})
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, isLit := n.(*ast.FuncLit); isLit {
			st.scanLockStmts(pkg, info, fact, lit.Body.List, nil)
			return false
		}
		return true
	})
	return held
}

// acquire records edges from everything held to the new class and
// pushes it.
func (st *taintState) acquire(pkg *Package, info *types.Info, fact *FuncFact, held []heldLock, l heldLock, at ast.Node) []heldLock {
	st.addAcquire(fact, l.class)
	for _, h := range held {
		st.recordEdge(pkg, fact, h, l, at)
	}
	return append(held, l)
}

// release pops the most recent acquisition of class.
func release(held []heldLock, class string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].class == class {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// callWhileHeld records edges from the held set to everything the
// callee may acquire (via its Acquires fact) and joins the callee's
// acquisition set into the caller's.
func (st *taintState) callWhileHeld(pkg *Package, info *types.Info, fact *FuncFact, call *ast.CallExpr, held []heldLock) {
	if _, _, isLock := st.lockClassOf(info, call); isLock {
		return
	}
	for _, key := range st.graph.resolveCall(info, call) {
		callee := st.mf.funcs[key]
		if callee == nil {
			continue
		}
		for _, class := range callee.Acquires {
			st.addAcquire(fact, class)
			for _, h := range held {
				st.recordEdge(pkg, fact, h, heldLock{class: class}, call)
			}
		}
	}
}
