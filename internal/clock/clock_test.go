package clock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSimulatedStartsAtEpoch(t *testing.T) {
	c := NewSimulated()
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", got, Epoch)
	}
}

func TestSimulatedZeroValueStartsAtEpoch(t *testing.T) {
	var c Simulated
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("zero-value Now() = %v, want %v", got, Epoch)
	}
}

func TestSimulatedAdvance(t *testing.T) {
	tests := []struct {
		name string
		d    time.Duration
		want time.Duration // offset from Epoch
	}{
		{name: "one second", d: time.Second, want: time.Second},
		{name: "zero", d: 0, want: 0},
		{name: "negative ignored", d: -time.Hour, want: 0},
		{name: "sub-millisecond", d: 250 * time.Microsecond, want: 250 * time.Microsecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := NewSimulated()
			got := c.Advance(tt.d)
			if want := Epoch.Add(tt.want); !got.Equal(want) {
				t.Fatalf("Advance(%v) = %v, want %v", tt.d, got, want)
			}
		})
	}
}

func TestSimulatedAdvanceAccumulates(t *testing.T) {
	c := NewSimulated()
	c.Advance(time.Second)
	c.Advance(2 * time.Second)
	if got, want := c.Now(), Epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSimulatedSetForwardOnly(t *testing.T) {
	c := NewSimulated()
	future := Epoch.Add(time.Hour)
	if got := c.Set(future); !got.Equal(future) {
		t.Fatalf("Set(future) = %v, want %v", got, future)
	}
	// Attempting to go backwards leaves the clock untouched.
	if got := c.Set(Epoch); !got.Equal(future) {
		t.Fatalf("Set(past) = %v, want clock to stay at %v", got, future)
	}
}

func TestNewSimulatedAt(t *testing.T) {
	start := time.Date(2020, time.January, 1, 0, 0, 0, 0, time.UTC)
	c := NewSimulatedAt(start)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestSystemClockMovesForward(t *testing.T) {
	var c System
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("system clock went backwards: %v then %v", a, b)
	}
}

// Property: for any sequence of non-negative advances, the final instant
// equals Epoch plus the sum, and the clock is monotone throughout.
func TestSimulatedMonotoneProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewSimulated()
		var total time.Duration
		prev := c.Now()
		for _, s := range steps {
			d := time.Duration(s) * time.Millisecond
			total += d
			now := c.Advance(d)
			if now.Before(prev) {
				return false
			}
			prev = now
		}
		return c.Now().Equal(Epoch.Add(total))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent advances are all applied exactly once.
func TestSimulatedConcurrentAdvance(t *testing.T) {
	c := NewSimulated()
	const (
		workers = 8
		perW    = 100
	)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perW; j++ {
				c.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := Epoch.Add(workers * perW * time.Millisecond)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}
