package analysis

import (
	"go/ast"
	"strings"
)

// Spancheck enforces the telemetry tracing discipline: every span
// minted with StartSpan must be ended on every return path. A span
// that is started and never ended stays open in the recorder forever —
// the decision-path trace renders as truncated, duration accounting is
// wrong, and the span ring fills with zombies. The repository
// convention is to follow the assignment immediately with
// defer span.End(); the analyzer also accepts an explicit span.End()
// reached before every subsequent return.
//
// Like errdrop, the check is syntactic: any call whose selector is
// named StartSpan is treated as minting a span, in both the := and =
// assignment forms. Test files are exempt (they routinely leave spans
// open to assert on intermediate state).
var Spancheck = &Analyzer{
	Name: "spancheck",
	Doc: "every telemetry.StartSpan result must be ended on all return " +
		"paths; follow the assignment with defer span.End()",
	Run: runSpancheck,
}

func runSpancheck(pass *Pass) {
	if !strings.Contains(pass.Pkg.Dir, "internal") {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isTestFile(f.Name) {
			continue
		}
		// Each FuncDecl and FuncLit body is scanned exactly once at its
		// own level: the statement walker never descends into nested
		// function literals (their return paths are their own), and the
		// Inspect below reaches every literal independently.
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					spanScanList(pass, fn.Body.List, false)
				}
			case *ast.FuncLit:
				spanScanList(pass, fn.Body.List, false)
			}
			return true
		})
	}
}

// spanScanList walks one statement list looking for StartSpan mints and
// checks each one's lifetime over the remainder of the list. It also
// recurses into composite statements so mints inside branches are
// found. The protected flag is unused at this level (it belongs to
// spanLifetime's scan) but keeps the two walkers symmetric.
func spanScanList(pass *Pass, stmts []ast.Stmt, _ bool) {
	for i, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if name, call, ok := spanMint(s); ok {
				if name == "_" {
					pass.Reportf(call.Pos(),
						"StartSpan result assigned to blank: the span can never be ended")
					continue
				}
				spanLifetime(pass, name, call, stmts[i+1:])
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isStartSpanCall(call) {
				pass.Reportf(call.Pos(),
					"result of StartSpan is dropped: assign it and defer its End")
			}
		}
		spanRecurse(pass, stmt)
	}
}

// spanRecurse descends into the blocks of a composite statement.
// Function literals are deliberately skipped: they are separate
// functions with separate return paths, scanned on their own.
func spanRecurse(pass *Pass, stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		spanScanList(pass, s.List, false)
	case *ast.IfStmt:
		spanScanList(pass, s.Body.List, false)
		if s.Else != nil {
			spanRecurse(pass, s.Else)
		}
	case *ast.ForStmt:
		spanScanList(pass, s.Body.List, false)
	case *ast.RangeStmt:
		spanScanList(pass, s.Body.List, false)
	case *ast.SwitchStmt:
		spanScanList(pass, s.Body.List, false)
	case *ast.TypeSwitchStmt:
		spanScanList(pass, s.Body.List, false)
	case *ast.SelectStmt:
		spanScanList(pass, s.Body.List, false)
	case *ast.CaseClause:
		spanScanList(pass, s.Body, false)
	case *ast.CommClause:
		spanScanList(pass, s.Body, false)
	case *ast.LabeledStmt:
		spanRecurse(pass, s.Stmt)
	}
}

// spanLifetime checks that the span named name, minted by call, is
// ended on every return path through the trailing statements.
func spanLifetime(pass *Pass, name string, call *ast.CallExpr, tail []ast.Stmt) {
	if !spanTailEnds(pass, name, tail, false) {
		pass.Reportf(call.Pos(),
			"span %s is never ended: follow the assignment with defer %s.End()", name, name)
	}
}

// spanTailEnds scans a statement list with the given entry protection
// state, reporting any return reached while the span is still open. It
// returns whether the span is protected (defer installed or End
// called) when control falls off the end of the list.
func spanTailEnds(pass *Pass, name string, stmts []ast.Stmt, protected bool) bool {
	for _, stmt := range stmts {
		if isDeferEnd(stmt, name) || isEndCall(stmt, name) {
			protected = true
			continue
		}
		if protected {
			continue
		}
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			pass.Reportf(s.Pos(),
				"span %s may not be ended on this return path: add defer %s.End() after StartSpan", name, name)
			return true // one report per span-path is enough
		case *ast.BlockStmt:
			protected = spanTailEnds(pass, name, s.List, protected)
		case *ast.IfStmt:
			// Branch-local Ends do not protect the code after the
			// branch, so the entry state is passed down and discarded.
			spanTailEnds(pass, name, s.Body.List, protected)
			if s.Else != nil {
				spanTailEnds(pass, name, []ast.Stmt{s.Else}, protected)
			}
		case *ast.ForStmt:
			spanTailEnds(pass, name, s.Body.List, protected)
		case *ast.RangeStmt:
			spanTailEnds(pass, name, s.Body.List, protected)
		case *ast.SwitchStmt:
			spanTailEnds(pass, name, s.Body.List, protected)
		case *ast.TypeSwitchStmt:
			spanTailEnds(pass, name, s.Body.List, protected)
		case *ast.SelectStmt:
			spanTailEnds(pass, name, s.Body.List, protected)
		case *ast.CaseClause:
			spanTailEnds(pass, name, s.Body, protected)
		case *ast.CommClause:
			spanTailEnds(pass, name, s.Body, protected)
		case *ast.LabeledStmt:
			protected = spanTailEnds(pass, name, []ast.Stmt{s.Stmt}, protected)
		}
	}
	return protected
}

// spanMint matches span := x.StartSpan(...) and span = x.StartSpan(...)
// and returns the bound identifier plus the call.
func spanMint(s *ast.AssignStmt) (string, *ast.CallExpr, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return "", nil, false
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return "", nil, false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !isStartSpanCall(call) {
		return "", nil, false
	}
	return id.Name, call, true
}

// isStartSpanCall matches any call whose selector is named StartSpan.
func isStartSpanCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "StartSpan"
}

// isDeferEnd matches defer name.End().
func isDeferEnd(stmt ast.Stmt, name string) bool {
	d, ok := stmt.(*ast.DeferStmt)
	return ok && isEndOn(d.Call, name)
}

// isEndCall matches a bare name.End() statement.
func isEndCall(stmt ast.Stmt, name string) bool {
	e, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := e.X.(*ast.CallExpr)
	return ok && isEndOn(call, name)
}

// isEndOn matches the call name.End().
func isEndOn(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == name
}
