package faultinject

import (
	"errors"
	"testing"
	"time"

	"overhaul/internal/clock"
)

func mustNew(t *testing.T, seed int64, rules ...Rule) *Injector {
	t.Helper()
	in, err := New(seed, rules...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return in
}

func TestEvalNoRulesNeverInjects(t *testing.T) {
	in := mustNew(t, 1)
	for i := 0; i < 100; i++ {
		for _, p := range Points() {
			if f := in.Eval(p); f.Injected() {
				t.Fatalf("unarmed point %s injected %v", p, f.Kind)
			}
		}
	}
	if got := len(in.Events()); got != 0 {
		t.Fatalf("events = %d, want 0", got)
	}
	if in.Evaluations() != 100*len(Points()) {
		t.Fatalf("evaluations = %d", in.Evaluations())
	}
}

func TestEvalDeterministicRule(t *testing.T) {
	in := mustNew(t, 1, Rule{Point: PointKernelOpen, Kind: KindError, After: 2, Count: 3})
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, in.Eval(PointKernelOpen).Injected())
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("eval %d injected=%v, want %v (after=2 count=3)", i, got[i], want[i])
		}
	}
}

func TestEvalErrorWrapsErrInjected(t *testing.T) {
	in := mustNew(t, 1, Rule{Point: PointStampWrite, Kind: KindError})
	f := in.Eval(PointStampWrite)
	if !f.Injected() || f.Err == nil {
		t.Fatalf("fault = %+v, want armed error", f)
	}
	if !errors.Is(f.Err, ErrInjected) {
		t.Fatalf("err %v does not wrap ErrInjected", f.Err)
	}
}

func TestEvalSeededSequencesMatch(t *testing.T) {
	rules := []Rule{
		{Point: PointNetlinkUserToKernel, Kind: KindError, Prob: 0.3},
		{Point: PointNetlinkUserToKernel, Kind: KindDuplicate, Prob: 0.2},
		{Point: PointShmTimer, Kind: KindError, Prob: 0.5},
	}
	run := func(seed int64) string {
		in := mustNew(t, seed, rules...)
		for i := 0; i < 500; i++ {
			in.Eval(PointNetlinkUserToKernel)
			in.Eval(PointShmTimer)
		}
		return in.Schedule()
	}
	if run(42) != run(42) {
		t.Fatal("same seed produced different schedules")
	}
	if run(42) == run(43) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestEvalDelayAdvancesVirtualClock(t *testing.T) {
	in := mustNew(t, 1, Rule{Point: PointNetlinkUserToKernel, Kind: KindDelay, Delay: 250 * time.Millisecond})
	clk := clock.NewSimulated()
	in.SetClock(clk)
	before := clk.Now()
	f := in.Eval(PointNetlinkUserToKernel)
	if f.Kind != KindDelay {
		t.Fatalf("kind = %v, want delay", f.Kind)
	}
	if got := clk.Now().Sub(before); got != 250*time.Millisecond {
		t.Fatalf("clock advanced %v, want 250ms", got)
	}
}

func TestNilInjectorAndHook(t *testing.T) {
	var in *Injector
	if in.Eval(PointKernelOpen).Injected() {
		t.Fatal("nil injector injected")
	}
	if in.Hook() != nil {
		t.Fatal("nil injector returned non-nil hook")
	}
	if Eval(nil, PointKernelOpen).Injected() {
		t.Fatal("nil hook injected")
	}
}

func TestRuleValidation(t *testing.T) {
	if _, err := New(1, Rule{Point: "bogus.point", Kind: KindError}); err == nil {
		t.Fatal("unknown point accepted")
	}
	if _, err := New(1, Rule{Point: PointKernelOpen}); err == nil {
		t.Fatal("missing kind accepted")
	}
	if _, err := New(1, Rule{Point: PointKernelOpen, Kind: KindDelay}); err == nil {
		t.Fatal("delay rule without delay accepted")
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(
		"netlink.user_to_kernel:drop:0.2, devfs.helper_crash:crash:after=3:count=1," +
			"netlink.kernel_to_user:delay:delay=40ms:prob=0.5")
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	want := []Rule{
		{Point: PointNetlinkUserToKernel, Kind: KindError, Prob: 0.2},
		{Point: PointDevfsCrash, Kind: KindCrash, After: 3, Count: 1},
		{Point: PointNetlinkKernelToUser, Kind: KindDelay, Delay: 40 * time.Millisecond, Prob: 0.5},
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}

	for _, bad := range []string{
		"justapoint",
		"kernel.open:explode",
		"bogus.point:drop",
		"kernel.open:drop:nonsense=1",
		"kernel.open:delay:delay=xyz",
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("ParseRules(%q) accepted", bad)
		}
	}

	if rules, err := ParseRules(""); err != nil || rules != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", rules, err)
	}
}

func TestRuleStringRoundTrips(t *testing.T) {
	for _, r := range DefaultRules() {
		parsed, err := ParseRules(r.String())
		if err != nil {
			t.Fatalf("ParseRules(%q): %v", r.String(), err)
		}
		if len(parsed) != 1 || parsed[0] != r {
			t.Fatalf("round trip %q → %+v, want %+v", r.String(), parsed, r)
		}
	}
}

func TestDefaultRulesValid(t *testing.T) {
	if _, err := New(7, DefaultRules()...); err != nil {
		t.Fatalf("DefaultRules invalid: %v", err)
	}
}
