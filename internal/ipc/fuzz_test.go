package ipc

import (
	"testing"
	"time"

	"overhaul/internal/clock"
)

// FuzzSharedMemAccess drives arbitrary offset/length accesses through a
// guarded segment: out-of-range must error, in-range must round-trip,
// and nothing may panic.
func FuzzSharedMemAccess(f *testing.F) {
	f.Add(0, 8, []byte("12345678"))
	f.Add(-1, 4, []byte("xxxx"))
	f.Add(4090, 10, []byte("overlap"))
	f.Fuzz(func(t *testing.T, off, n int, data []byte) {
		st := newFakeStamps()
		st.set(1, clock.Epoch)
		shm, err := NewSharedMem(st, clock.NewSimulated(), 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		m := shm.Map(1)
		werr := m.Write(off, data)
		if off >= 0 && off+len(data) <= PageSize {
			if werr != nil {
				t.Fatalf("in-range write [%d,%d) failed: %v", off, off+len(data), werr)
			}
			got, rerr := m.Read(off, len(data))
			if rerr != nil {
				t.Fatalf("read-back failed: %v", rerr)
			}
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("round trip mismatch at %d", i)
				}
			}
		} else if werr == nil {
			t.Fatalf("out-of-range write [%d,%d) accepted", off, off+len(data))
		}
		_, _ = m.Read(off, n) // must be total
	})
}

// FuzzMsgQueueStampPropagation checks the paper's sender→receiver rule
// (§IV-B) on message queues for arbitrary stamp orderings: a send
// embeds the sender's stamp into the queue unless the queue already
// holds a newer one, and a receive leaves the receiver with the max of
// its own stamp and the queue's.
func FuzzMsgQueueStampPropagation(f *testing.F) {
	f.Add(uint16(1500), uint16(200), 3, true)
	f.Add(uint16(0), uint16(0), 1, false)
	f.Add(uint16(200), uint16(1500), 9, true)
	f.Fuzz(func(t *testing.T, senderMs, receiverMs uint16, key int, posix bool) {
		st := newFakeStamps()
		senderStamp := clock.Epoch.Add(time.Duration(senderMs) * time.Millisecond)
		receiverStamp := clock.Epoch.Add(time.Duration(receiverMs) * time.Millisecond)
		st.set(sender, senderStamp)
		st.set(receiver, receiverStamp)

		flavor := FlavorSysV
		if posix {
			flavor = FlavorPOSIX
		}
		if flavor == FlavorSysV && key <= 0 {
			key = 1 // covered by FuzzMsgQueue; here only legal sends matter
		}
		q := NewMsgQueue(st, flavor, 4)
		if err := q.Send(sender, key, []byte("x")); err != nil {
			t.Fatalf("send: %v", err)
		}
		if got := q.EmbeddedStamp(); got.Before(senderStamp) {
			t.Fatalf("embedded stamp %v lost the sender's %v", got, senderStamp)
		}
		if _, _, err := q.Recv(receiver, 0); err != nil {
			t.Fatalf("recv: %v", err)
		}
		want := receiverStamp
		if senderStamp.After(want) {
			want = senderStamp
		}
		if got := st.get(t, receiver); !got.Equal(want) {
			t.Fatalf("receiver stamp = %v, want max(own %v, sender %v) = %v",
				got, receiverStamp, senderStamp, want)
		}
	})
}

// FuzzShmStampPropagation checks the shared-memory fault machinery for
// arbitrary stamp orderings and clock advances: the first access
// through a mapping faults and propagates in both directions, accesses
// within the wait window ride the fast path, and a reader adopting
// through its own fault ends at max(own, writer) exactly as for
// explicit message passing.
func FuzzShmStampPropagation(f *testing.F) {
	f.Add(uint16(1200), uint16(300), uint16(600), 17)
	f.Add(uint16(300), uint16(1200), uint16(100), 0)
	f.Add(uint16(0), uint16(0), uint16(500), 4095)
	f.Fuzz(func(t *testing.T, writerMs, readerMs, advanceMs uint16, off int) {
		st := newFakeStamps()
		writerStamp := clock.Epoch.Add(time.Duration(writerMs) * time.Millisecond)
		readerStamp := clock.Epoch.Add(time.Duration(readerMs) * time.Millisecond)
		st.set(sender, writerStamp)
		st.set(receiver, readerStamp)

		clk := clock.NewSimulated()
		shm, err := NewSharedMem(st, clk, 1, 0) // wait = DefaultShmWait
		if err != nil {
			t.Fatal(err)
		}
		if off < 0 {
			off = -off
		}
		off %= PageSize

		wMap := shm.Map(sender)
		if err := wMap.Write(off, []byte{0xA5}); err != nil {
			t.Fatalf("first write: %v", err)
		}
		if got := shm.EmbeddedStamp(); got.Before(writerStamp) {
			t.Fatalf("embedded stamp %v lost the writer's %v", got, writerStamp)
		}
		first := shm.StatsSnapshot()
		if first.Faults != 1 {
			t.Fatalf("first access through a fresh mapping must fault, stats %+v", first)
		}

		advance := time.Duration(advanceMs) * time.Millisecond
		clk.Advance(advance)
		if err := wMap.Write(off, []byte{0x5A}); err != nil {
			t.Fatalf("second write: %v", err)
		}
		second := shm.StatsSnapshot()
		if advance < DefaultShmWait {
			if second.Faults != first.Faults || second.FastAccesses != first.FastAccesses+1 {
				t.Fatalf("write inside the %v wait window must ride the fast path, stats %+v -> %+v",
					DefaultShmWait, first, second)
			}
		} else if second.Faults != first.Faults+1 {
			t.Fatalf("write after the wait window must fault again, stats %+v -> %+v", first, second)
		}

		rMap := shm.Map(receiver)
		if _, err := rMap.Read(off, 1); err != nil {
			t.Fatalf("read: %v", err)
		}
		want := readerStamp
		if writerStamp.After(want) {
			want = writerStamp
		}
		if got := st.get(t, receiver); !got.Equal(want) {
			t.Fatalf("reader stamp = %v, want max(own %v, writer %v) = %v",
				got, readerStamp, writerStamp, want)
		}
	})
}

// FuzzMsgQueue drives arbitrary send/recv key patterns through both
// queue flavors.
func FuzzMsgQueue(f *testing.F) {
	f.Add(1, 0, []byte("m"))
	f.Add(-3, 7, []byte{})
	f.Fuzz(func(t *testing.T, key, filter int, body []byte) {
		st := newFakeStamps()
		st.set(1, clock.Epoch)
		st.set(2, clock.Epoch)
		for _, flavor := range []QueueFlavor{FlavorPOSIX, FlavorSysV} {
			q := NewMsgQueue(st, flavor, 8)
			serr := q.Send(1, key, body)
			if flavor == FlavorSysV && key <= 0 {
				if serr == nil {
					t.Fatal("SysV accepted non-positive mtype")
				}
				continue
			}
			if serr != nil {
				t.Fatalf("send: %v", serr)
			}
			gotKey, gotBody, rerr := q.Recv(2, 0)
			if rerr != nil {
				t.Fatalf("recv: %v", rerr)
			}
			if gotKey != key || len(gotBody) != len(body) {
				t.Fatalf("recv = (%d, %d bytes), want (%d, %d)", gotKey, len(gotBody), key, len(body))
			}
			_, _, _ = q.Recv(2, filter) // empty; must be total
		}
	})
}
