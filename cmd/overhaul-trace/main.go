// Command overhaul-trace regenerates the paper's protocol figures
// (Figures 1–6) as message-sequence traces driven by live runs of the
// assembled system. Each trace is produced by actually executing the
// scenario — the tool fails if the system no longer behaves as
// published.
//
// Usage:
//
//	overhaul-trace              # all figures
//	overhaul-trace -figure 4    # one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"overhaul/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	figure := flag.Int("figure", 0, "figure number to regenerate (1-6); 0 selects all")
	flag.Parse()

	figs := map[int]func() (*trace.Trace, error){
		1: trace.Figure1,
		2: trace.Figure2,
		3: trace.Figure3,
		4: trace.Figure4,
		5: trace.Figure5,
		6: trace.Figure6,
	}

	if *figure != 0 {
		f, ok := figs[*figure]
		if !ok {
			return fmt.Errorf("no figure %d (valid: 1-6)", *figure)
		}
		tr, err := f()
		if err != nil {
			return err
		}
		fmt.Print(tr.Render())
		return nil
	}

	traces, err := trace.All()
	if err != nil {
		return err
	}
	for i, tr := range traces {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(tr.Render())
	}
	return nil
}
