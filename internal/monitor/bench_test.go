package monitor

// Telemetry-overhead benchmarks: the issue's acceptance criterion is
// that a nil recorder adds ZERO allocations to the Decide hot path.
// Run with `make bench`, which records ns/op and allocs/op for every
// benchmark into BENCH_overhaul.json at the repo root.

import (
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/telemetry"
)

// benchMonitor builds a standalone enforcing monitor with one stamped
// process whose stamp stays inside δ, so every Decide grants.
func benchMonitor(b *testing.B, tel *telemetry.Recorder) (*Monitor, time.Time) {
	b.Helper()
	clk := clock.NewSimulated()
	tasks := newFakeTasks()
	tasks.add(7)
	tasks.stamps[7] = clk.Now()
	m, err := New(clk, tasks, Config{Enforce: true, Telemetry: tel})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	return m, clk.Now().Add(time.Millisecond)
}

func BenchmarkDecideTelemetryDisabled(b *testing.B) {
	m, opTime := benchMonitor(b, nil)
	// Warm up: the first append allocates the audit ring lazily; the
	// steady state must then be allocation-free.
	m.Decide(7, OpMic, opTime)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decide(7, OpMic, opTime)
	}
}

func BenchmarkDecideTelemetryEnabled(b *testing.B) {
	m, opTime := benchMonitor(b, telemetry.New(clock.NewSimulated()))
	m.Decide(7, OpMic, opTime)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decide(7, OpMic, opTime)
	}
}

// TestDecideTelemetryDisabledZeroAlloc hard-asserts the benchmark's
// claim so a regression fails `go test`, not just a human reading
// BENCH_overhaul.json.
func TestDecideTelemetryDisabledZeroAlloc(t *testing.T) {
	clk := clock.NewSimulated()
	tasks := newFakeTasks()
	tasks.add(7)
	tasks.stamps[7] = clk.Now()
	m, err := New(clk, tasks, Config{Enforce: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	opTime := clk.Now().Add(time.Millisecond)
	m.Decide(7, OpMic, opTime) // allocate the audit ring
	if avg := testing.AllocsPerRun(200, func() {
		m.Decide(7, OpMic, opTime)
	}); avg != 0 {
		t.Errorf("Decide with nil recorder allocates %.1f times per op, want 0", avg)
	}
}
