package bench

import "time"

// stopwatch is the one sanctioned wall-clock reader in the benchmark
// harness. Table I measures real elapsed time, so it cannot run on the
// injectable clock.Clock like the rest of the repository — but every
// wall-clock read is confined to this file so clockcheck can keep the
// rest of the module deterministic.
type stopwatch struct {
	start time.Time
}

// startWall begins a wall-clock measurement.
func startWall() stopwatch {
	return stopwatch{start: time.Now()} //overhaul:allow clockcheck Table I measures real elapsed time
}

// lap returns the elapsed wall time and restarts the stopwatch.
func (s *stopwatch) lap() time.Duration {
	now := time.Now() //overhaul:allow clockcheck Table I measures real elapsed time
	d := now.Sub(s.start)
	s.start = now
	return d
}
