package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The run cache persists a whole lint run keyed on the exact module
// contents: engine version, selected analyzers, and the sha256 of
// every Go file (name + content). On a full hit the driver emits the
// recorded diagnostics without parsing types at all — which is the
// entire cost of the interprocedural analyzers, dominated by
// type-checking the stdlib closure from source. Any change to any
// file misses and recomputes everything: facts flow across packages
// in dependency order, so partial reuse without re-checking types
// would reuse stale cross-package conclusions. The per-package fact
// tables ride along in the record (EncodeFacts) so a cached run keeps
// an inspectable audit trail of what the analyzers believed.

// engineVersion invalidates cached runs when analyzer or fact
// semantics change. Bump on any behavioral change to the analyzers,
// the taint engine, or the fact encoding.
const engineVersion = "overhaul-analysis-v2"

// cacheRecord is the on-disk form of one cached run.
type cacheRecord struct {
	Version     string                     `json:"version"`
	Key         string                     `json:"key"`
	Diagnostics []Diagnostic               `json:"diagnostics"`
	Facts       map[string]json.RawMessage `json:"facts,omitempty"` // Package.Dir -> FactSet
}

// CacheKey derives the content hash for a module + analyzer
// selection. It reads every file from disk, so the key reflects what
// the analyzers will actually see.
func CacheKey(m *Module, analyzers []*Analyzer) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "engine=%s\n", engineVersion)
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	fmt.Fprintf(h, "analyzers=%v\n", names)
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			data, err := os.ReadFile(f.Abs)
			if err != nil {
				return "", fmt.Errorf("cache key: %w", err)
			}
			sum := sha256.Sum256(data)
			fmt.Fprintf(h, "%s %x\n", f.Name, sum)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// LoadCachedRun returns the cached diagnostics for key, with ok false
// on any miss (absent, unreadable, version skew, corrupt). Cache
// problems are never fatal — the caller just recomputes.
func LoadCachedRun(cacheDir, key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(filepath.Join(cacheDir, key+".json"))
	if err != nil {
		return nil, false
	}
	var rec cacheRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false
	}
	if rec.Version != engineVersion || rec.Key != key {
		return nil, false
	}
	return rec.Diagnostics, true
}

// StoreCachedRun persists a run. The module's fact tables are
// included when they were computed (a typed analyzer ran).
func StoreCachedRun(cacheDir, key string, m *Module, diags []Diagnostic) error {
	rec := cacheRecord{Version: engineVersion, Key: key, Diagnostics: diags}
	if m.facts != nil {
		rec.Facts = make(map[string]json.RawMessage, len(m.facts.byDir))
		for dir, set := range m.facts.byDir {
			data, err := EncodeFacts(set)
			if err != nil {
				return fmt.Errorf("cache store: %w", err)
			}
			rec.Facts[dir] = data
		}
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return fmt.Errorf("cache store: %w", err)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cache store: %w", err)
	}
	path := filepath.Join(cacheDir, key+".json")
	tmp, err := os.CreateTemp(cacheDir, ".cache-*")
	if err != nil {
		return fmt.Errorf("cache store: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmpName) //overhaul:allow errdrop best-effort cleanup of a temp file after a failed write
		if werr != nil {
			return fmt.Errorf("cache store: %w", werr)
		}
		return fmt.Errorf("cache store: %w", cerr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName) //overhaul:allow errdrop best-effort cleanup of a temp file after a failed rename
		return fmt.Errorf("cache store: %w", err)
	}
	return nil
}
