package telemetry

import (
	"sort"
	"time"
)

// metricKey addresses one metric. Labels is a single pre-formed string
// (e.g. "op=mic verdict=grant") rather than a map so that lookups never
// allocate and snapshots order deterministically.
type metricKey struct {
	Subsystem string
	Name      string
	Labels    string
}

// counter is a monotonically increasing count.
type counter struct {
	value   uint64
	updated time.Time
}

// gauge is a set-to-latest value.
type gauge struct {
	value   int64
	updated time.Time
}

// HistogramBuckets is the fixed latency ladder every histogram uses.
// Fixed buckets keep snapshots comparable across runs and subsystems;
// on the simulated clock most observations land in the first bucket
// unless injected delays or retry backoff advanced virtual time.
var HistogramBuckets = []time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// histogram is a fixed-bucket latency histogram. counts has one entry
// per HistogramBuckets bound plus a final overflow bucket.
type histogram struct {
	counts  []uint64
	sum     time.Duration
	total   uint64
	updated time.Time
}

// Add increments the (subsystem, name, labels) counter by delta.
func (r *Recorder) Add(subsystem, name, labels string, delta uint64) {
	if r == nil {
		return
	}
	now := r.now()
	k := metricKey{Subsystem: subsystem, Name: name, Labels: labels}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[k]
	if c == nil {
		c = &counter{}
		r.counters[k] = c
	}
	c.value += delta
	c.updated = now
}

// Gauge sets the (subsystem, name, labels) gauge to v.
func (r *Recorder) Gauge(subsystem, name, labels string, v int64) {
	if r == nil {
		return
	}
	now := r.now()
	k := metricKey{Subsystem: subsystem, Name: name, Labels: labels}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[k]
	if g == nil {
		g = &gauge{}
		r.gauges[k] = g
	}
	g.value = v
	g.updated = now
}

// Observe records one latency observation into the (subsystem, name,
// labels) histogram. Negative durations clamp to zero.
func (r *Recorder) Observe(subsystem, name, labels string, d time.Duration) {
	if r == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	now := r.now()
	k := metricKey{Subsystem: subsystem, Name: name, Labels: labels}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[k]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(HistogramBuckets)+1)}
		r.hists[k] = h
	}
	idx := len(HistogramBuckets) // overflow
	for i, bound := range HistogramBuckets {
		if d <= bound {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.sum += d
	h.total++
	h.updated = now
}

// CounterValue returns the current value of a counter (0 when absent).
func (r *Recorder) CounterValue(subsystem, name, labels string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[metricKey{Subsystem: subsystem, Name: name, Labels: labels}]
	if c == nil {
		return 0
	}
	return c.value
}

// MetricPoint is one metric in a snapshot.
type MetricPoint struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	Labels    string `json:"labels,omitempty"`
	// Kind is "counter", "gauge", or "histogram".
	Kind string `json:"kind"`
	// Value carries the counter value or the gauge value.
	Value int64 `json:"value,omitempty"`
	// Histogram fields (Kind "histogram" only). Buckets aligns with
	// HistogramBuckets plus one trailing overflow bucket.
	Buckets []uint64      `json:"buckets,omitempty"`
	Sum     time.Duration `json:"sum_ns,omitempty"`
	Count   uint64        `json:"count,omitempty"`
	// Updated is the (virtual-clock) instant of the last update.
	Updated time.Time `json:"updated"`
}

// MetricsSnapshot returns every metric, sorted by subsystem, name,
// labels, kind — a deterministic order under the simulated clock.
func (r *Recorder) MetricsSnapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]MetricPoint, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k, c := range r.counters {
		out = append(out, MetricPoint{
			Subsystem: k.Subsystem, Name: k.Name, Labels: k.Labels,
			Kind: "counter", Value: int64(c.value), Updated: c.updated,
		})
	}
	for k, g := range r.gauges {
		out = append(out, MetricPoint{
			Subsystem: k.Subsystem, Name: k.Name, Labels: k.Labels,
			Kind: "gauge", Value: g.value, Updated: g.updated,
		})
	}
	for k, h := range r.hists {
		buckets := make([]uint64, len(h.counts))
		copy(buckets, h.counts)
		out = append(out, MetricPoint{
			Subsystem: k.Subsystem, Name: k.Name, Labels: k.Labels,
			Kind: "histogram", Buckets: buckets, Sum: h.sum, Count: h.total,
			Updated: h.updated,
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Subsystem != b.Subsystem {
			return a.Subsystem < b.Subsystem
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Labels != b.Labels {
			return a.Labels < b.Labels
		}
		return a.Kind < b.Kind
	})
	return out
}
