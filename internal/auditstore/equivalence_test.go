package auditstore_test

import (
	"math/rand"
	"testing"
	"time"

	"overhaul/internal/auditstore"
)

// TestBackendEquivalence pins the two backends to each other: the same
// appended stream answers every query identically whether it sits in
// the indexed in-memory store or in JSONL segments on disk — including
// after the segments have been rotated, compacted, and reopened. This
// mirrors the fleet ≡ standalone property-test style: one oracle, one
// system under test, a seeded input space, and a filter grid.
func TestBackendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 500
	ops := []string{"open_device", "read_screen", "inject_input", "grab_keyboard"}
	verdicts := []string{"grant", "deny"}
	reasons := []string{
		"interaction 1s ago",
		"no recent interaction",
		"stamp expired",
		"forced by policy",
	}

	mem := auditstore.NewMemStore()
	dir := t.TempDir()
	file, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 16, CompactSealed: 3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	for i := 0; i < n; i++ {
		// Times mostly ascend but occasionally step back, so the
		// time-ordered fast path and the fallback scan both run.
		step := time.Duration(rng.Intn(200)-10) * time.Millisecond
		r := auditstore.Record{
			Time:    testBase.Add(time.Duration(i)*100*time.Millisecond + step),
			Session: uint64(rng.Intn(4)),
			PID:     1 + rng.Intn(10),
			Op:      ops[rng.Intn(len(ops))],
			Verdict: verdicts[rng.Intn(len(verdicts))],
			Reason:  reasons[rng.Intn(len(reasons))],
		}
		if rng.Intn(3) == 0 {
			r.Stamp = r.Time.Add(-time.Duration(rng.Intn(5)) * time.Second)
		}
		if _, err := mem.Append(r); err != nil {
			t.Fatalf("mem append %d: %v", i, err)
		}
		if _, err := file.Append(r); err != nil {
			t.Fatalf("file append %d: %v", i, err)
		}
	}

	queries := []auditstore.Query{
		{},
		{PID: 3},
		{PID: 99},
		{Verdict: "deny"},
		{Verdict: "grant"},
		{Verdict: "unknown"},
		{Reason: "interaction"},
		{Reason: "expired"},
		{Session: 2},
		{Since: testBase.Add(20 * time.Second)},
		{Until: testBase.Add(30 * time.Second)},
		{Since: testBase.Add(10 * time.Second), Until: testBase.Add(40 * time.Second)},
		{PID: 5, Verdict: "deny"},
		{PID: 5, Verdict: "deny", Reason: "no recent", Session: 1},
		{Verdict: "grant", Since: testBase.Add(25 * time.Second), Limit: 17},
		{Limit: 1},
		{Limit: 499},
	}

	compare := func(t *testing.T, label string, st auditstore.Store) {
		t.Helper()
		for qi, q := range queries {
			want, err := auditstore.ScanAll(mem, q)
			if err != nil {
				t.Fatalf("oracle scan %d: %v", qi, err)
			}
			got, err := auditstore.ScanAll(st, q)
			if err != nil {
				t.Fatalf("%s scan %d: %v", label, qi, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s query %d (%+v): %d records, oracle %d", label, qi, q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s query %d record %d:\n got %+v\nwant %+v", label, qi, i, got[i], want[i])
				}
			}
		}
	}

	compare(t, "jsonl", file)
	if err := file.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	reopened, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 16, CompactSealed: 3})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close() //overhaul:allow errdrop test cleanup
	if rec := reopened.Recovery(); !rec.Clean || rec.Records != n {
		t.Fatalf("reopen recovery = %+v, want clean %d records", rec, n)
	}
	compare(t, "jsonl-reopened", reopened)
}
