package kernel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"overhaul/internal/fs"
	"overhaul/internal/telemetry"
)

// Process is the task_struct analogue: one schedulable task. Linux does
// not strictly distinguish processes from threads — each gets its own
// task_struct — and neither do we: Clone covers both.
//
// The fields the permission decision path reads — interaction stamp,
// its minting span, and the tracer pid — are atomics, so a concurrent
// Decide never blocks on a process mutating its own state.
//
// Process structs are type-stable: Exit returns the struct to a
// per-kernel free list and a later Spawn/Fork may reincarnate it as a
// different process (the SLAB_TYPESAFE_BY_RCU discipline — Linux
// recycles task_structs the same way). PIDs themselves are never
// reused, which is what makes recycling detectable: the lock-free read
// path re-checks p.pid after its atomic loads and treats a mismatch as
// "no such process". A *Process handle is therefore invalidated by
// Exit; kernel subsystems always re-resolve pid → Process through the
// table rather than caching handles across an exit.
type Process struct {
	k *Kernel

	// pid and ppid are atomics not because a process's ids ever change
	// — they are fixed for one incarnation — but because reincarnation
	// rewrites them while a stale lock-free reader may still hold the
	// struct. reincarnate stores the new pid *before* resetting the
	// stamp fields: under Go's seq-cst atomics a reader that observes
	// any new-incarnation data and then re-checks the pid must observe
	// the new pid and report a miss.
	pid  atomic.Int64
	ppid atomic.Int64

	// slot is the interaction stamp + minting span (the Overhaul
	// task_struct field), written only through StampSlot.Adopt's
	// CAS-max loop on the live path.
	slot StampSlot
	// tracedBy is the tracer PID, 0 when not traced.
	tracedBy atomic.Int32

	mu       sync.Mutex
	name     string
	exe      string
	cred     fs.Cred
	state    State
	children []int
}

// PID returns the process identifier.
func (p *Process) PID() int { return int(p.pid.Load()) }

// PPID returns the parent's PID (0 for initial processes).
func (p *Process) PPID() int { return int(p.ppid.Load()) }

// Name returns the process name (comm).
func (p *Process) Name() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.name
}

// Executable returns the path the process's code is mapped from.
func (p *Process) Executable() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exe
}

// Cred returns the process credentials.
func (p *Process) Cred() fs.Cred {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cred
}

// InteractionStamp returns the Overhaul interaction timestamp.
func (p *Process) InteractionStamp() time.Time {
	return p.slot.Time()
}

// StampSpan returns the trace span that minted the current interaction
// stamp (zero when unknown).
func (p *Process) StampSpan() telemetry.SpanContext {
	return p.slot.Span()
}

// adoptStamp installs t (and the span that delivered it) iff t is newer
// than the current stamp; see StampSlot.Adopt.
func (p *Process) adoptStamp(t time.Time, ctx telemetry.SpanContext) {
	p.slot.Adopt(t, ctx)
}

// State returns the lifecycle state.
func (p *Process) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Children returns the PIDs of the process's children.
func (p *Process) Children() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.children))
	copy(out, p.children)
	return out
}

// alive reports whether the process can issue syscalls.
func (p *Process) alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state == StateRunning
}

// procGet pops a recycled Process off the kernel's free list, or
// allocates a fresh one. The k field is set exactly once, on the
// allocating path: the pool is per-kernel, so a recycled struct's k is
// already correct and rewriting it would race with stale readers.
func (k *Kernel) procGet() *Process {
	if p, _ := k.procPool.Get().(*Process); p != nil {
		return p
	}
	return &Process{k: k}
}

// reincarnate initialises a (possibly recycled) Process struct as a
// brand-new process. The pid store comes FIRST — see the Process type
// comment: it is what lets a stale lock-free reader detect that the
// struct changed hands mid-read.
func (p *Process) reincarnate(pid, ppid int, name, exe string, cred fs.Cred) {
	p.pid.Store(int64(pid))
	p.ppid.Store(int64(ppid))
	p.slot.Reset()
	p.tracedBy.Store(0)
	p.mu.Lock()
	p.name = name
	p.exe = exe
	p.cred = cred
	p.state = StateRunning
	p.children = p.children[:0] // keep the backing array: fork reuses it
	p.mu.Unlock()
}

// SpawnSpec describes an initial process created from outside the
// simulation (init, the display server, the trusted helper, ...).
type SpawnSpec struct {
	Name string
	Exe  string
	Cred fs.Cred
}

// Spawn creates a fresh process with no parent and no interaction
// history.
func (k *Kernel) Spawn(spec SpawnSpec) (*Process, error) {
	if spec.Name == "" {
		return nil, errors.New("spawn: empty process name")
	}
	p := k.procGet()
	p.reincarnate(int(k.nextPID.Add(1)), 0, spec.Name, spec.Exe, spec.Cred)
	k.table.put(p)
	return p, nil
}

// Fork duplicates the process, Linux-style: the child gets a copy of the
// task struct — *including the interaction timestamp*. This is how
// propagation policy P1 falls out of the implementation "for free"
// (paper §IV-B, "Process creation and IPC").
func (p *Process) Fork() (*Process, error) {
	if !p.alive() {
		return nil, fmt.Errorf("fork from pid %d: %w", p.PID(), ErrDeadProcess)
	}
	k := p.k

	p.mu.Lock()
	name, exe, cred := p.name, p.exe, p.cred
	p.mu.Unlock()

	child := k.procGet()
	child.reincarnate(int(k.nextPID.Add(1)), p.PID(), name, exe, cred)
	if !k.disableP1 {
		child.slot.inherit(&p.slot) // P1: stamp and minting span inherit together
	}
	k.table.put(child)
	k.stats.forks.Add(1)

	p.mu.Lock()
	p.children = append(p.children, child.PID())
	p.mu.Unlock()
	return child, nil
}

// Clone is an alias for Fork covering threads: Linux backs both with a
// new task_struct, so interaction stamps propagate to threads the same
// way.
func (p *Process) Clone() (*Process, error) { return p.Fork() }

// Exec replaces the process image. The task struct — and therefore the
// interaction stamp — survives, exactly as execve leaves task_struct in
// place on Linux.
func (p *Process) Exec(name, exe string) error {
	if !p.alive() {
		return fmt.Errorf("exec in pid %d: %w", p.PID(), ErrDeadProcess)
	}
	if name == "" {
		return errors.New("exec: empty process name")
	}
	p.mu.Lock()
	p.name = name
	p.exe = exe
	p.mu.Unlock()

	p.k.stats.execs.Add(1)
	return nil
}

// Exit terminates the process, removes it from the process table, and
// returns the task struct to the kernel's free list. The handle is
// invalid afterwards: a later Spawn/Fork may reincarnate the struct as
// a different process (with a different pid — pids are never reused).
func (p *Process) Exit() error {
	p.mu.Lock()
	if p.state != StateRunning {
		p.mu.Unlock()
		return fmt.Errorf("exit pid %d: %w", p.PID(), ErrDeadProcess)
	}
	p.state = StateDead
	p.mu.Unlock()

	k := p.k
	k.table.remove(p.PID())
	k.stats.exits.Add(1)
	k.procPool.Put(p)
	return nil
}

// --- ptrace ---------------------------------------------------------------

// PtraceAttach lets the process attach to target as a debugger. As on
// Linux (Yama-style restriction the paper cites), only direct
// descendants may be traced. While the Overhaul ptrace guard is on, the
// tracee's sensitive permissions are disabled for the duration — which
// also neutralises launch-then-inject attacks through a parent tracing
// its own child.
func (p *Process) PtraceAttach(target *Process) error {
	if !p.alive() {
		return fmt.Errorf("ptrace from pid %d: %w", p.PID(), ErrDeadProcess)
	}
	if target == nil || !target.alive() {
		return fmt.Errorf("ptrace: target: %w", ErrDeadProcess)
	}
	if target.PPID() != p.PID() && p.Cred().UID != 0 {
		return fmt.Errorf("ptrace pid %d from pid %d: not a direct descendant: %w",
			target.PID(), p.PID(), ErrNotPermitted)
	}
	if !target.tracedBy.CompareAndSwap(0, int32(p.PID())) {
		return fmt.Errorf("ptrace pid %d: already traced by %d: %w",
			target.PID(), target.tracedBy.Load(), ErrNotPermitted)
	}
	return nil
}

// PtraceDetach releases a tracee previously attached by this process.
func (p *Process) PtraceDetach(target *Process) error {
	if target == nil {
		return errors.New("ptrace detach: nil target")
	}
	if !target.tracedBy.CompareAndSwap(int32(p.PID()), 0) {
		return fmt.Errorf("ptrace detach pid %d: not traced by %d: %w",
			target.PID(), p.PID(), ErrNotPermitted)
	}
	return nil
}

// Traced reports whether the process is currently being ptraced.
func (p *Process) Traced() bool {
	return p.tracedBy.Load() != 0
}
