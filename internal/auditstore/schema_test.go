package auditstore_test

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"
	"time"

	"overhaul/internal/auditstore"
	"overhaul/internal/clock"
	"overhaul/internal/monitor"
	"overhaul/internal/telemetry"
)

// TestRecordGoldenEncoding pins the segment line format to a literal:
// 8 hex digits of payload length, 8 hex digits of CRC-32 (IEEE), the
// compact JSON payload with exactly these keys in exactly this order,
// and a newline. If this test breaks, existing store directories stop
// decoding — change the format only with a migration story.
func TestRecordGoldenEncoding(t *testing.T) {
	r := auditstore.Record{
		Seq:     42,
		Time:    time.Date(2016, 3, 1, 9, 0, 2, 0, time.UTC),
		Session: 7,
		PID:     1234,
		Op:      "open_device",
		Verdict: "deny",
		Reason:  "no interaction stamp",
		Stamp:   time.Date(2016, 3, 1, 8, 59, 0, 0, time.UTC),
	}
	const goldenPayload = `{"seq":42,"time":"2016-03-01T09:00:02Z","session":7,"pid":1234,` +
		`"op":"open_device","verdict":"deny","reason":"no interaction stamp",` +
		`"stamp":"2016-03-01T08:59:00Z"}`
	want := fmt.Sprintf("%08x%08x%s\n", len(goldenPayload), crc32.ChecksumIEEE([]byte(goldenPayload)), goldenPayload)

	line, err := auditstore.EncodeRecord(r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if string(line) != want {
		t.Fatalf("segment line drifted from golden:\n got %q\nwant %q", line, want)
	}

	// Optional fields stay omitted when zero — the schema's omitempty
	// set is part of the format. (Stamp is always present: a zero time
	// means "no stamp consulted" and time.Time ignores omitempty.)
	bare := auditstore.Record{Seq: 1, Time: r.Time, PID: 1, Op: "x", Verdict: "grant", Reason: "r"}
	line, err = auditstore.EncodeRecord(bare)
	if err != nil {
		t.Fatalf("encode bare: %v", err)
	}
	for _, key := range []string{"session", "degraded"} {
		if strings.Contains(string(line), `"`+key+`"`) {
			t.Fatalf("zero-valued %q serialized in %q", key, line)
		}
	}
}

// TestRecordSchemaShared pins the shared decision schema across the
// three surfaces that render it: the durable store's Record, the
// flight recorder's JSONL dump, and the record↔decision conversion.
// The store and the black-box dump must agree byte for byte on how a
// decision reads, or post-incident forensics ends up correlating two
// dialects of the same event.
func TestRecordSchemaShared(t *testing.T) {
	opTime := time.Date(2016, 3, 1, 9, 0, 2, 0, time.UTC)
	d := monitor.Decision{
		PID:      4321,
		Op:       monitor.Op("open_device"),
		OpTime:   opTime,
		Stamp:    opTime.Add(-1 * time.Second),
		Verdict:  monitor.VerdictDeny,
		Reason:   "no recent interaction",
		Degraded: true,
	}
	rec := auditstore.FromDecision(d, 9)

	// Record ↔ Decision is lossless (Seq and Session live only on the
	// store side).
	back := rec.Decision()
	if back != d {
		t.Fatalf("decision round trip:\n got %+v\nwant %+v", back, d)
	}

	// The store's Detail renders byte-identically to the flight
	// recorder's "decision" event for the same decision.
	clk := clock.NewSimulatedAt(opTime)
	tr := telemetry.New(clk)
	tr.RecordDecision(telemetry.SpanContext{}, "monitor", d.PID, string(d.Op), d.Verdict.String(), d.Reason)
	evs := tr.FlightEvents()
	if len(evs) != 1 {
		t.Fatalf("flight events = %d, want 1", len(evs))
	}
	if evs[0].Detail != rec.Detail() {
		t.Fatalf("schema drift between store and flight recorder:\n store  %q\n flight %q", rec.Detail(), evs[0].Detail)
	}

	// And the flight dump's JSONL carries that same detail string, so
	// grepping a dump and querying the store match on the same bytes.
	tr.TripFlight(telemetry.SpanContext{}, "monitor", "schema test")
	dump, ok := tr.LastFlightDump()
	if !ok {
		t.Fatalf("no flight dump after trip")
	}
	raw, err := dump.JSONL()
	if err != nil {
		t.Fatalf("dump jsonl: %v", err)
	}
	var found bool
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev struct {
			Kind   string `json:"kind"`
			Detail string `json:"detail"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue
		}
		if ev.Kind == "decision" && ev.Detail == rec.Detail() {
			found = true
		}
	}
	if !found {
		t.Fatalf("flight dump JSONL does not carry the store's detail rendering %q:\n%s", rec.Detail(), raw)
	}
}
