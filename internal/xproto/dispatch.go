package xproto

import (
	"fmt"

	"overhaul/internal/xserver"
)

// Reply is the server's answer to a dispatched request.
type Reply struct {
	Window xserver.WindowID // CreateWindow result
	Data   []byte           // GetProperty / GetImage result
}

// Dispatch applies a decoded request on behalf of the given client
// connection, exactly as the display server's request loop would. All
// Overhaul mediation happens inside the server methods; Dispatch adds no
// policy of its own.
func Dispatch(c *xserver.Client, req Request) (Reply, error) {
	switch req.Op {
	case OpCreateWindow:
		id, err := c.CreateWindow(int(req.X), int(req.Y), int(req.W), int(req.H))
		return Reply{Window: id}, err

	case OpMapWindow:
		return Reply{}, c.MapWindow(req.Window)

	case OpUnmapWindow:
		return Reply{}, c.UnmapWindow(req.Window)

	case OpConfigureWindow:
		return Reply{}, c.ConfigureWindow(req.Window, xserver.Geometry{
			X: int(req.X), Y: int(req.Y), W: int(req.W), H: int(req.H),
		})

	case OpDraw:
		return Reply{}, c.Draw(req.Window, req.Data)

	case OpSetSelection:
		return Reply{}, c.SetSelection(req.Name, req.Window)

	case OpConvertSelection:
		return Reply{}, c.ConvertSelection(req.Name, req.Target, req.Property, req.Window)

	case OpChangeProperty:
		return Reply{}, c.ChangeProperty(req.Window, req.Property, req.Data)

	case OpGetProperty:
		data, err := c.GetProperty(req.Window, req.Property)
		return Reply{Data: data}, err

	case OpDeleteProperty:
		return Reply{}, c.DeleteProperty(req.Window, req.Property)

	case OpSendEvent:
		ev := xserver.Event{
			Type:      xserver.EventType(req.EventType),
			Selection: req.Name,
			Target:    req.Target,
			Property:  req.Property,
			Key:       string(req.Data),
			X:         int(req.X),
			Y:         int(req.Y),
		}
		return Reply{}, c.SendEvent(req.Window2, ev)

	case OpGetImage:
		data, err := c.GetImage(req.Window)
		return Reply{Data: data}, err

	case OpCopyArea:
		return Reply{}, c.CopyArea(req.Window, req.Window2)

	default:
		return Reply{}, fmt.Errorf("%w: %v", ErrBadOpcode, req.Op)
	}
}

// HandleWire decodes one wire message and dispatches it — the full
// untrusted-bytes-to-server path.
func HandleWire(c *xserver.Client, msg []byte) (Reply, error) {
	req, err := Decode(msg)
	if err != nil {
		return Reply{}, err
	}
	return Dispatch(c, req)
}
