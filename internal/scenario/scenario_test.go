package scenario

import (
	"errors"
	"strings"
	"testing"
	"time"

	"overhaul/internal/devfs"
)

func TestBasicGrantDenyScript(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	res, err := r.Run([]Step{
		{Kind: StepLaunch, App: "recorder"},
		{Kind: StepAdvance, D: 2 * time.Second},
		{Kind: StepOpenDevice, App: "recorder", Device: devfs.ClassMicrophone, Expect: ExpectDeny},
		{Kind: StepClick, App: "recorder"},
		{Kind: StepAdvance, D: 100 * time.Millisecond},
		{Kind: StepOpenDevice, App: "recorder", Device: devfs.ClassMicrophone, Expect: ExpectGrant},
		{Kind: StepExpectAlerts, Alerts: 2}, // one blocked + one granted
		{Kind: StepAdvance, D: 10 * time.Second},
		{Kind: StepOpenDevice, App: "recorder", Device: devfs.ClassMicrophone, Expect: ExpectDeny},
	})
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, FormatTimeline(res))
	}
	if res.Grants != 1 || res.Denials != 2 {
		t.Fatalf("grants/denials = %d/%d\n%s", res.Grants, res.Denials, FormatTimeline(res))
	}
}

func TestHeadlessSpyScript(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	_, err = r.Run([]Step{
		{Kind: StepLaunchHeadless, App: "spy"},
		{Kind: StepOpenDevice, App: "spy", Device: devfs.ClassCamera, Expect: ExpectDeny},
		{Kind: StepOpenDevice, App: "spy", Device: devfs.ClassGPS, Expect: ExpectDeny},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestClipboardScript(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	_, err = r.Run([]Step{
		{Kind: StepLaunch, App: "editor"},
		{Kind: StepLaunch, App: "sniffer"},
		{Kind: StepAdvance, D: 2 * time.Second},
		{Kind: StepType, App: "editor", Key: "ctrl+c"},
		{Kind: StepCopy, App: "editor", Expect: ExpectGrant},
		{Kind: StepPaste, App: "sniffer", Expect: ExpectDeny}, // no input
		{Kind: StepType, App: "sniffer", Key: "ctrl+v"},
		{Kind: StepPaste, App: "sniffer", Expect: ExpectGrant}, // user-driven
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCaptureScript(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	_, err = r.Run([]Step{
		{Kind: StepLaunch, App: "shot"},
		{Kind: StepAdvance, D: 2 * time.Second},
		{Kind: StepCapture, App: "shot", Expect: ExpectDeny},
		{Kind: StepClick, App: "shot"},
		{Kind: StepCapture, App: "shot", Expect: ExpectGrant},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestExpectationFailureReported(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	_, err = r.Run([]Step{
		{Kind: StepLaunch, App: "app"},
		{Kind: StepAdvance, D: 2 * time.Second},
		// Wrong expectation on purpose: no click happened.
		{Kind: StepOpenDevice, App: "app", Device: devfs.ClassMicrophone, Expect: ExpectGrant},
	})
	if !errors.Is(err, ErrExpectation) {
		t.Fatalf("Run = %v, want ErrExpectation", err)
	}
}

func TestUnknownAppAndDevice(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if _, err := r.Run([]Step{{Kind: StepClick, App: "ghost"}}); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("unknown app = %v", err)
	}
	if _, err := r.Run([]Step{
		{Kind: StepLaunch, App: "a"},
		{Kind: StepOpenDevice, App: "a", Device: devfs.Class("toaster")},
	}); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestTimelineRendering(t *testing.T) {
	r, err := NewRunner()
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	res, err := r.Run([]Step{
		{Kind: StepLaunch, App: "app"},
		{Kind: StepAdvance, D: 2 * time.Second},
		{Kind: StepClick, App: "app"},
		{Kind: StepOpenDevice, App: "app", Device: devfs.ClassCamera, Expect: ExpectGrant},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := FormatTimeline(res)
	for _, want := range []string{"launch app", "click app", "app opens camera", "granted", "grants=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}
