package main

import (
	"strings"
	"testing"
)

const cpuSweepOutput = `goos: linux
BenchmarkParallelDecide         	 1000000	       120.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkParallelDecide-2       	 2000000	        70.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkParallelDecide-4       	 4000000	        40.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSpanRing/cap-256       	  500000	       300.0 ns/op	      16 B/op	       1 allocs/op
BenchmarkMicroMonitorDecide     	  500000	       700.0 ns/op	       8 B/op	       1 allocs/op
PASS
`

func TestParseRekeysCPUSweeps(t *testing.T) {
	entries, err := parse(strings.NewReader(cpuSweepOutput))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for name, ns := range map[string]float64{
		"BenchmarkParallelDecide/cpus=1": 120.0,
		"BenchmarkParallelDecide/cpus=2": 70.0,
		"BenchmarkParallelDecide/cpus=4": 40.0,
	} {
		e, ok := entries[name]
		if !ok {
			t.Fatalf("missing rekeyed entry %q in %v", name, entries)
		}
		if e.NsPerOp != ns {
			t.Errorf("%s ns/op = %v, want %v", name, e.NsPerOp, ns)
		}
	}
	if _, ok := entries["BenchmarkParallelDecide"]; ok {
		t.Error("bare sweep name survived rekeying")
	}
	// A numeric sub-benchmark without a bare sibling stays verbatim.
	if _, ok := entries["BenchmarkSpanRing/cap-256"]; !ok {
		t.Errorf("sub-benchmark name was rewritten: %v", entries)
	}
	if _, ok := entries["BenchmarkMicroMonitorDecide"]; !ok {
		t.Error("plain benchmark missing")
	}
}

func TestParseMergesRepeatedRuns(t *testing.T) {
	// go test -count=3 repeats every benchmark line; the converter must
	// keep the minimum ns/op (noise only adds time) and the maximum
	// allocs/op (an extra alloc in any run is real).
	entries, err := parse(strings.NewReader(`
BenchmarkMicroMonitorDecide  500000  700.0 ns/op  8 B/op  1 allocs/op
BenchmarkMicroMonitorDecide  500000  430.0 ns/op  8 B/op  2 allocs/op
BenchmarkMicroMonitorDecide  500000  950.0 ns/op  8 B/op  1 allocs/op
PASS
`))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e, ok := entries["BenchmarkMicroMonitorDecide"]
	if !ok {
		t.Fatalf("missing entry: %v", entries)
	}
	if e.NsPerOp != 430.0 {
		t.Errorf("ns/op = %v, want min 430.0", e.NsPerOp)
	}
	if e.AllocsPerOp != 2 {
		t.Errorf("allocs/op = %v, want max 2", e.AllocsPerOp)
	}
}

func TestParseKeepsLoneSuffixVerbatim(t *testing.T) {
	// Without the bare sibling, -8 is indistinguishable from a
	// sub-benchmark name and must not be rewritten.
	entries, err := parse(strings.NewReader(
		"BenchmarkDecideTelemetryDisabled-8  9416926  120.7 ns/op  0 B/op  0 allocs/op\n"))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, ok := entries["BenchmarkDecideTelemetryDisabled-8"]; !ok {
		t.Fatalf("lone suffixed name rewritten: %v", entries)
	}
}

func TestCompareAcceptsWithinBudget(t *testing.T) {
	baseline := map[string]Entry{
		"BenchmarkMicroMonitorDecide":    {NsPerOp: 700, AllocsPerOp: 1},
		"BenchmarkParallelDecide/cpus=2": {NsPerOp: 70, AllocsPerOp: 0},
		"BenchmarkAblation/forkskew":     {NsPerOp: 100, AllocsPerOp: 5},
	}
	current := map[string]Entry{
		"BenchmarkMicroMonitorDecide":    {NsPerOp: 850, AllocsPerOp: 1}, // +21 %: inside budget
		"BenchmarkParallelDecide/cpus=2": {NsPerOp: 60, AllocsPerOp: 0},
		"BenchmarkAblation/forkskew":     {NsPerOp: 900, AllocsPerOp: 9}, // not gated
	}
	var out strings.Builder
	if err := compare(baseline, current, 8, &out); err != nil {
		t.Fatalf("compare: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "Ablation") {
		t.Errorf("non-gated benchmark in comparison table:\n%s", out.String())
	}
}

func TestCompareFailsOnNsRegression(t *testing.T) {
	baseline := map[string]Entry{"BenchmarkDecideTelemetryEnabled": {NsPerOp: 200, AllocsPerOp: 1}}
	current := map[string]Entry{"BenchmarkDecideTelemetryEnabled": {NsPerOp: 300, AllocsPerOp: 1}}
	var out strings.Builder
	err := compare(baseline, current, 8, &out)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("compare = %v, want ns/op regression failure", err)
	}
}

func TestCompareFailsOnAllocRegression(t *testing.T) {
	baseline := map[string]Entry{"BenchmarkMicroForkInheritance": {NsPerOp: 400, AllocsPerOp: 1}}
	current := map[string]Entry{"BenchmarkMicroForkInheritance": {NsPerOp: 380, AllocsPerOp: 2}}
	var out strings.Builder
	err := compare(baseline, current, 8, &out)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("compare = %v, want allocs/op regression failure", err)
	}
}

func TestCompareOversubscribedGatesAllocsOnly(t *testing.T) {
	// On a 1-CPU host a /cpus=4 run timeslices one core, so its wall
	// clock is scheduler noise: ns/op regressions pass, allocs still
	// gate. The in-budget /cpus=1 row keeps the gate satisfiable.
	baseline := map[string]Entry{
		"BenchmarkParallelDecide/cpus=1": {NsPerOp: 100, AllocsPerOp: 0},
		"BenchmarkParallelDecide/cpus=4": {NsPerOp: 100, AllocsPerOp: 0},
	}
	current := map[string]Entry{
		"BenchmarkParallelDecide/cpus=1": {NsPerOp: 110, AllocsPerOp: 0},
		"BenchmarkParallelDecide/cpus=4": {NsPerOp: 300, AllocsPerOp: 0},
	}
	var out strings.Builder
	if err := compare(baseline, current, 1, &out); err != nil {
		t.Fatalf("compare: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "oversubscribed") {
		t.Errorf("oversubscribed row not marked:\n%s", out.String())
	}
	// The same 3x on a host that genuinely has 4 CPUs is a regression.
	if err := compare(baseline, current, 4, &out); err == nil {
		t.Error("3x ns/op on a 4-CPU host passed, want regression")
	}
	// An alloc regression gates regardless of oversubscription.
	current["BenchmarkParallelDecide/cpus=4"] = Entry{NsPerOp: 300, AllocsPerOp: 1}
	if err := compare(baseline, current, 1, &out); err == nil {
		t.Error("alloc regression on oversubscribed row passed, want failure")
	}
}

func TestCompareStoreRowsGateAllocsOnly(t *testing.T) {
	// The per-scale store tables are wall-clock-exempt: Get/Scan at
	// small scales are tens of ns and Append is syscall/GC-bound, so
	// only their allocation contract gates.
	baseline := map[string]Entry{"BenchmarkStoreAppend/jsonl/100": {NsPerOp: 2500, AllocsPerOp: 5}}
	current := map[string]Entry{"BenchmarkStoreAppend/jsonl/100": {NsPerOp: 4500, AllocsPerOp: 5}}
	var out strings.Builder
	if err := compare(baseline, current, 8, &out); err != nil {
		t.Fatalf("compare: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "allocs-only") {
		t.Errorf("store row not marked allocs-only:\n%s", out.String())
	}
	current["BenchmarkStoreAppend/jsonl/100"] = Entry{NsPerOp: 2400, AllocsPerOp: 6}
	if err := compare(baseline, current, 8, &out); err == nil {
		t.Error("alloc regression on store row passed, want failure")
	}
}

func TestCompareRequiresOverlap(t *testing.T) {
	baseline := map[string]Entry{"BenchmarkMicroOld": {NsPerOp: 100}}
	current := map[string]Entry{"BenchmarkMicroNew": {NsPerOp: 100}}
	var out strings.Builder
	if err := compare(baseline, current, 8, &out); err == nil {
		t.Fatal("compare with disjoint benchmark sets succeeded, want error")
	}
}
