package analysis_test

import (
	"reflect"
	"testing"

	"overhaul/internal/analysis"
)

// TestTaintLattice pins the lattice ordering the taint engine joins
// over: None < Clock < Stamp.
func TestTaintLattice(t *testing.T) {
	if !(analysis.TaintNone < analysis.TaintClock && analysis.TaintClock < analysis.TaintStamp) {
		t.Fatal("taint lattice ordering broken")
	}
	for _, tc := range []struct {
		taint analysis.Taint
		want  string
	}{
		{analysis.TaintNone, "none"}, {analysis.TaintClock, "clock"}, {analysis.TaintStamp, "stamp"},
	} {
		if got := tc.taint.String(); got != tc.want {
			t.Errorf("Taint(%d).String() = %q, want %q", tc.taint, got, tc.want)
		}
	}
}

// TestFactRoundTrip checks that every fact table computed for the
// flowcheck fixture survives EncodeFacts/DecodeFacts unchanged — the
// property the driver's run cache depends on.
func TestFactRoundTrip(t *testing.T) {
	m, err := analysis.Load("testdata/flowcheck")
	if err != nil {
		t.Fatal(err)
	}
	if !m.TypeCheck() {
		t.Fatalf("fixture must type-check cleanly: %v", m.TypeErrors())
	}
	facts := m.Facts()
	sets := 0
	for _, pkg := range m.Packages {
		fs := facts.ForPackage(pkg)
		if fs == nil {
			continue
		}
		sets++
		data, err := analysis.EncodeFacts(fs)
		if err != nil {
			t.Fatalf("%s: encode: %v", pkg.Dir, err)
		}
		back, err := analysis.DecodeFacts(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", pkg.Dir, err)
		}
		if !reflect.DeepEqual(fs, back) {
			t.Errorf("%s: facts did not round-trip:\n got %+v\nwant %+v", pkg.Dir, back, fs)
		}
	}
	if sets == 0 {
		t.Fatal("no fact sets computed for the flowcheck fixture")
	}
}

// TestCrossPackageTaintFacts pins the interprocedural conclusions the
// flowcheck fixture is built around: a helper in one package that
// derives time from the clock must carry a clock-tainted result
// summary into its callers' packages, and the forged variant must not.
func TestCrossPackageTaintFacts(t *testing.T) {
	m, err := analysis.Load("testdata/flowcheck")
	if err != nil {
		t.Fatal(err)
	}
	facts := m.Facts()

	fromClock := facts.FuncFactByKey("flowfix/timeutil.FromClock")
	if fromClock == nil || len(fromClock.Results) == 0 || fromClock.Results[0] < analysis.TaintClock {
		t.Errorf("timeutil.FromClock should summarize a clock-tainted result, got %+v", fromClock)
	}
	forged := facts.FuncFactByKey("flowfix/timeutil.Forged")
	if forged != nil && len(forged.Results) > 0 && forged.Results[0] != analysis.TaintNone {
		t.Errorf("timeutil.Forged should stay untainted, got %+v", forged)
	}

	// The stamp getter's fiat taint flows into comparisons via the
	// caller, and setter call sites feed name-keyed parameter facts.
	if got := facts.ParamTaint("SetInteractionStamp", 1); got < analysis.TaintClock {
		t.Errorf("ParamTaint(SetInteractionStamp, 1) = %v, want at least clock", got)
	}
}

// TestLockFactsOnFixture checks the lock-order side of the fact
// engine against the lockordercheck fixture: sharded classes are
// detected and held→acquired edges come back with report sites.
func TestLockFactsOnFixture(t *testing.T) {
	m, err := analysis.Load("testdata/lockordercheck")
	if err != nil {
		t.Fatal(err)
	}
	facts := m.Facts()
	classes := facts.LockClasses()
	if len(classes) == 0 {
		t.Fatal("no lock classes detected in lockordercheck fixture")
	}
	foundSharded := false
	for _, sharded := range classes {
		if sharded {
			foundSharded = true
		}
	}
	if !foundSharded {
		t.Error("fixture declares sharded locks but none were classified as sharded")
	}
	edges := facts.AllLockEdges()
	if len(edges) == 0 {
		t.Fatal("no lock edges recorded in lockordercheck fixture")
	}
	for _, e := range edges {
		if pkg, pos, ok := facts.EdgeSite(e); !ok || pkg == nil || !pos.IsValid() {
			t.Errorf("edge %v has no report site", e)
		}
	}
}
