// Package analysis is a stdlib-only static-analysis framework for the
// Overhaul repository.
//
// Overhaul's security argument rests on invariants the Go type system
// cannot express: every IPC send path must propagate interaction
// timestamps (paper §IV-B), every access decision must be evaluated
// against the single injectable clock so the δ=2 s window is
// meaningful, and the simulated kernel's shared structures must never
// be touched without their lock. The analyzers in this package check
// those invariants mechanically over the module's syntax trees; the
// driver in cmd/overhaul-lint wires them into CI.
//
// The framework is deliberately built on go/ast + go/parser + go/token
// only — no golang.org/x/tools dependency — so go.mod stays
// dependency-free. Analyzers are therefore syntactic: they trade the
// precision of full type information for zero-dependency portability,
// and lean on the repository's strong conventions (mutex fields named
// before the state they guard, carrier helpers with unique names).
//
// Findings can be suppressed with an in-source annotation:
//
//	//overhaul:allow <analyzer> <reason>
//
// which silences the named analyzer on its own line and the line
// immediately following. The reason is mandatory; an allow comment
// without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable/disable
	// flags, and //overhaul:allow annotations.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// NeedsTypes marks analyzers that consume type information and
	// interprocedural facts. The driver type-checks the module once
	// when at least one such analyzer is selected; purely syntactic
	// analyzers keep their zero-setup fast path.
	NeedsTypes bool
}

// Diagnostic is one finding, addressed by file position.
type Diagnostic struct {
	File     string `json:"file"` // slash path relative to the scan root
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Fixes holds machine-applicable rewrites that resolve the
	// finding, if the analyzer can propose any. The driver's -fix
	// mode applies the first fix of each diagnostic.
	Fixes []SuggestedFix `json:"fixes,omitempty"`
}

// SuggestedFix is one self-contained rewrite. All edits must apply
// atomically: a fix is either taken whole or not at all.
type SuggestedFix struct {
	// Message describes the rewrite ("discard the error explicitly").
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// TextEdit replaces the byte range [Start, End) of File (a slash path
// relative to the scan root) with NewText. Start == End inserts.
type TextEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

// String renders the conventional compiler-style form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package plus the reporting
// sink. Reports landing on a line covered by a matching
// //overhaul:allow annotation are dropped before they reach the sink.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Pkg      *Package

	sink func(Diagnostic)
}

// Position resolves a token position against the module's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Module.Fset.Position(pos)
}

// Reportf files a diagnostic at pos unless a suppression annotation
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// ReportFix files a diagnostic carrying suggested fixes.
func (p *Pass) ReportFix(pos token.Pos, fixes []SuggestedFix, format string, args ...any) {
	p.report(pos, fixes, format, args...)
}

func (p *Pass) report(pos token.Pos, fixes []SuggestedFix, format string, args ...any) {
	position := p.Position(pos)
	file := p.Pkg.fileByAbs(position.Filename)
	if file != nil && file.suppressed(p.Analyzer.Name, position.Line) {
		return
	}
	name := position.Filename
	if file != nil {
		name = file.Name
	}
	p.sink(Diagnostic{
		File:     name,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    fixes,
	})
}

// TypeInfo returns the type-checked view of the pass's package, nil
// when unavailable. Only meaningful for analyzers with NeedsTypes.
func (p *Pass) TypeInfo() *TypeInfo {
	return p.Module.TypeInfoFor(p.Pkg)
}

// Facts returns the module's interprocedural fact tables, nil when no
// package type-checked.
func (p *Pass) Facts() *ModuleFacts {
	return p.Module.Facts()
}

// Edit builds a TextEdit replacing the source range [start, end) with
// newText, resolving positions to file-relative byte offsets.
func (p *Pass) Edit(start, end token.Pos, newText string) TextEdit {
	sp := p.Position(start)
	ep := p.Position(end)
	name := sp.Filename
	if file := p.Pkg.fileByAbs(sp.Filename); file != nil {
		name = file.Name
	}
	return TextEdit{File: name, Start: sp.Offset, End: ep.Offset, NewText: newText}
}

// Run applies each analyzer to every package of the module and returns
// the surviving findings sorted by file, line, column, analyzer.
// Malformed suppression annotations are reported alongside, under the
// pseudo-analyzer name "allow".
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			diags = append(diags, f.badAllows...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Module:   m,
				Pkg:      pkg,
				sink:     func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass) //overhaul:allow errdrop Analyzer.Run is a void field call; the name collides with error-returning Runs elsewhere
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// --- shared syntactic helpers ---------------------------------------------

// importName returns the local name under which file imports path, or
// "" when the file does not import it. An unnamed import of "time"
// yields "time"; import xtime "time" yields "xtime"; import _ "time"
// yields "".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		got := strings.Trim(imp.Path.Value, `"`)
		if got != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(got, "/"); i >= 0 {
			return got[i+1:]
		}
		return got
	}
	return ""
}

// selectorCall matches a call of the form pkg.Name(...) and returns the
// qualifier and selector names.
func selectorCall(call *ast.CallExpr) (qual, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	return id.Name, sel.Sel.Name, true
}

// isTestFile reports whether the file name follows the _test.go
// convention.
func isTestFile(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}
