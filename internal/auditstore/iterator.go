package auditstore

import (
	"sort"
	"strings"
)

// Iterable is the optional streaming-scan interface both backends
// implement: an Iterator yields records into a caller-owned Record, so
// steady-state iteration performs no allocation.
type Iterable interface {
	Iter(q Query) (*Iterator, error)
}

// Iterator streams records matching a query in ascending sequence
// order over an immutable snapshot of the store: records appended
// after Iter are not seen, records in the snapshot are never lost,
// and Next never blocks appenders. Like Scan, the narrowest
// applicable index drives iteration — a pid or verdict posting list
// when the query pins one, their galloping-merge intersection when it
// pins both — and a Since bound over a time-ordered stream seeks its
// starting position instead of scanning to it.
//
// An Iterator is not safe for concurrent use; create one per
// goroutine.
type Iterator struct {
	recs []Record
	q    Query

	// Iteration plan. postA drives posting iteration; postB, when
	// non-nil, is galloping-merge intersected with it.
	postA, postB []int
	usePost      bool
	i, j         int // cursors into postA/postB, or recs position in sequence mode

	// Precomputed filter flags: which Query fields still need checking
	// per candidate (posting lists already pin pid/verdict).
	checkPID, checkVerdict, checkSince, checkUntil, checkReason, checkSession bool

	// Reason-substring memo: audit streams intern their reason strings
	// (the policy evaluator hands out cached reasons), so consecutive
	// candidates usually carry the *same* string header and Go's string
	// equality short-circuits on the data pointer. One remembered
	// verdict then answers most Contains checks in O(1).
	lastReason   string
	lastReasonOK bool
	haveReason   bool

	matched int
	done    bool
}

// Iter implements Iterable over the in-memory index. The snapshot is
// taken under the read lock; iteration itself is lock-free (the record
// slice and posting lists are append-only, so their captured prefixes
// are immutable).
func (m *MemStore) Iter(q Query) (*Iterator, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	it := &Iterator{q: q}
	m.planLocked(q, it)
	return it, nil
}

// planLocked fills in the iteration plan for q. Callers hold at least
// the read lock.
func (m *MemStore) planLocked(q Query, it *Iterator) {
	it.recs = m.recs
	it.checkSince = !q.Since.IsZero()
	it.checkUntil = !q.Until.IsZero()
	it.checkReason = q.Reason != ""
	it.checkSession = q.Session != 0

	// Since seek: on a time-ordered stream the first candidate
	// position is found by binary search, not by scanning.
	start := 0
	if it.checkSince && m.timeOrdered {
		start = sort.Search(len(m.recs), func(i int) bool {
			return !m.recs[i].Time.Before(q.Since)
		})
		it.checkSince = false // everything from start on passes
	}

	var pid, ver []int
	havePID, haveVer := false, false
	if q.PID != 0 {
		pid, havePID = m.byPID[q.PID], true
	}
	if q.Verdict != "" {
		ver, haveVer = m.byVerdict[q.Verdict], true
	}
	switch {
	case havePID && haveVer:
		it.usePost = true
		it.postA, it.postB = pid, ver
		if len(ver) < len(pid) {
			it.postA, it.postB = ver, pid
		}
		it.i = sort.SearchInts(it.postA, start)
		it.j = sort.SearchInts(it.postB, start)
	case havePID:
		it.usePost = true
		it.postA = pid
		it.checkVerdict = false
		it.i = sort.SearchInts(pid, start)
	case haveVer:
		it.usePost = true
		it.postA = ver
		it.i = sort.SearchInts(ver, start)
	default:
		it.i = start
	}
	// Posting lists pin their own field; the sequence path re-checks
	// both (cheaply — they are zero in this branch anyway).
	it.checkPID = !havePID && q.PID != 0
	it.checkVerdict = havePID && !haveVer && q.Verdict != ""
}

// match applies the residual filters to a candidate. It is written to
// stay under the inlining budget: the only call in the hot path is the
// outlined reason check, and that is a memoized pointer comparison in
// the common interned-reason case.
func (it *Iterator) match(r *Record) bool {
	if it.checkSince && r.Time.Before(it.q.Since) {
		return false
	}
	if it.checkUntil && !r.Time.Before(it.q.Until) {
		return false
	}
	if it.checkPID && r.PID != it.q.PID {
		return false
	}
	if it.checkVerdict && r.Verdict != it.q.Verdict {
		return false
	}
	if it.checkReason && !it.reasonOK(r.Reason) {
		return false
	}
	if it.checkSession && r.Session != it.q.Session {
		return false
	}
	return true
}

// reasonOK reports whether s contains the query's reason substring,
// memoizing the last answer keyed on the string itself — Go's string
// equality short-circuits on the data pointer, so interned reasons
// (which the policy evaluator's reason cache hands out) answer in O(1).
func (it *Iterator) reasonOK(s string) bool {
	if it.haveReason && s == it.lastReason {
		return it.lastReasonOK
	}
	it.lastReason = s
	it.haveReason = true
	it.lastReasonOK = strings.Contains(s, it.q.Reason)
	return it.lastReasonOK
}

// drain runs the iteration to completion through yield, the engine
// behind both backends' Scan. The common audit-triage shapes — one
// posting list or the plain sequence, with at most a reason-substring
// residual — get a hand-inlined loop (match costs ~3× the inlining
// budget, so the compiler cannot do this for us); everything else goes
// through the general nextRef path.
func (it *Iterator) drain(yield func(Record) bool) {
	recs := it.recs
	limit := it.q.Limit
	if !it.checkSince && !it.checkUntil && !it.checkPID &&
		!it.checkVerdict && !it.checkSession && it.postB == nil && limit == 0 {
		// Unlimited fast shapes keep the live state across the opaque
		// yield call as small as possible: every extra local is a spill
		// and reload per record, and at ~12 ns/record those dominate.
		seq := recs[it.i:]
		if it.usePost {
			seq = nil
		}
		if !it.checkReason {
			if it.usePost {
				for _, a := range it.postA[it.i:] {
					if !yield(recs[a]) {
						return
					}
				}
				return
			}
			for i := range seq {
				if !yield(seq[i]) {
					return
				}
			}
			return
		}
		// Reason-residual loops: the memo needs no "seen" flag — its
		// zero state (lastReason == "", lastOK == false) is already the
		// right answer for an empty-reason record, because a set query
		// reason is never the empty string.
		qReason := it.q.Reason
		var lastReason string
		lastOK := false
		if it.usePost {
			for _, a := range it.postA[it.i:] {
				r := &recs[a]
				if r.Reason != lastReason {
					lastReason = r.Reason
					lastOK = strings.Contains(r.Reason, qReason)
				}
				if lastOK && !yield(*r) {
					return
				}
			}
			return
		}
		for i := range seq {
			r := &seq[i]
			if r.Reason != lastReason {
				lastReason = r.Reason
				lastOK = strings.Contains(r.Reason, qReason)
			}
			if lastOK && !yield(*r) {
				return
			}
		}
		return
	}
	for {
		r := it.nextRef()
		if r == nil {
			return
		}
		if !yield(*r) {
			return
		}
	}
}

// nextRef returns a pointer to the next matching record in the
// snapshot, or nil when the iteration is exhausted. The pointee is
// immutable; callers must copy it to retain it.
func (it *Iterator) nextRef() *Record {
	if it.done || (it.q.Limit > 0 && it.matched >= it.q.Limit) {
		it.done = true
		return nil
	}
	if it.usePost {
		if it.postB != nil {
			for it.i < len(it.postA) && it.j < len(it.postB) {
				a, b := it.postA[it.i], it.postB[it.j]
				switch {
				case a == b:
					it.i++
					it.j++
					if r := &it.recs[a]; it.match(r) {
						it.matched++
						return r
					}
				case a < b:
					it.i = gallopTo(it.postA, it.i+1, b)
				default:
					it.j = gallopTo(it.postB, it.j+1, a)
				}
			}
			it.done = true
			return nil
		}
		for it.i < len(it.postA) {
			r := &it.recs[it.postA[it.i]]
			it.i++
			if it.match(r) {
				it.matched++
				return r
			}
		}
		it.done = true
		return nil
	}
	for it.i < len(it.recs) {
		r := &it.recs[it.i]
		it.i++
		if it.match(r) {
			it.matched++
			return r
		}
	}
	it.done = true
	return nil
}

// Next copies the next matching record into the caller-owned out and
// reports whether one was found. It allocates nothing.
func (it *Iterator) Next(out *Record) bool {
	r := it.nextRef()
	if r == nil {
		return false
	}
	*out = *r
	return true
}

// gallopTo returns the first index >= from with list[index] >= target,
// by exponential probing followed by binary search — O(log d) in the
// distance d advanced, which is what makes intersecting a short
// posting list with a long one cheap.
func gallopTo(list []int, from, target int) int {
	if from >= len(list) || list[from] >= target {
		return from
	}
	step := 1
	lo := from
	hi := from + step
	for hi < len(list) && list[hi] < target {
		lo = hi
		step <<= 1
		hi = from + step
	}
	if hi > len(list) {
		hi = len(list)
	}
	// Invariant: list[lo] < target, list[hi] >= target (or hi == len).
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if list[mid] < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
