package auditlog

import (
	"errors"
	"strings"
	"testing"
	"time"

	"overhaul/internal/core"
	"overhaul/internal/devfs"
	"overhaul/internal/fs"
	"overhaul/internal/xserver"
)

func bootWithLog(t *testing.T) (*core.System, *Writer, string) {
	t.Helper()
	sys, err := core.Boot(core.Options{Enforce: true, AlertSecret: "a"})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	w, err := NewWriter(sys.FS, sys.Kernel.Monitor())
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	return sys, w, mic
}

func TestFlushAndRead(t *testing.T) {
	sys, w, mic := bootWithLog(t)
	app, err := sys.Launch("app")
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sys.Settle(2 * xserver.DefaultVisibilityThreshold)

	// One denial, one grant.
	if _, err := app.OpenDevice(mic); err == nil {
		t.Fatal("expected denial")
	}
	if err := app.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(100 * time.Millisecond)
	if _, err := app.OpenDevice(mic); err != nil {
		t.Fatalf("OpenDevice: %v", err)
	}

	n, err := w.Flush()
	if err != nil || n != 2 {
		t.Fatalf("Flush = %d, %v", n, err)
	}
	lines, err := w.Read(fs.Cred{UID: 1000, GID: 1000})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[0], "verdict=deny") || !strings.Contains(lines[1], "verdict=grant") {
		t.Fatalf("log content wrong:\n%s\n%s", lines[0], lines[1])
	}
	if !strings.Contains(lines[0], "op=mic") {
		t.Fatalf("log missing op: %s", lines[0])
	}
}

func TestGrep(t *testing.T) {
	sys, w, mic := bootWithLog(t)
	spy, err := sys.LaunchHeadless("spy")
	if err != nil {
		t.Fatalf("LaunchHeadless: %v", err)
	}
	for i := 0; i < 3; i++ {
		_, _ = sys.Kernel.Open(spy, mic, fs.AccessRead)
	}
	if _, err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	hits, err := w.Grep(fs.Root, "verdict=deny")
	if err != nil || len(hits) != 3 {
		t.Fatalf("Grep = %d hits, %v", len(hits), err)
	}
	none, err := w.Grep(fs.Root, "verdict=grant")
	if err != nil || len(none) != 0 {
		t.Fatalf("Grep grant = %v, %v", none, err)
	}
}

func TestFlushReplacesContent(t *testing.T) {
	sys, w, mic := bootWithLog(t)
	spy, err := sys.LaunchHeadless("spy")
	if err != nil {
		t.Fatalf("LaunchHeadless: %v", err)
	}
	_, _ = sys.Kernel.Open(spy, mic, fs.AccessRead)
	if _, err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	sys.Kernel.Monitor().ResetAudit()
	if n, err := w.Flush(); err != nil || n != 0 {
		t.Fatalf("Flush after reset = %d, %v", n, err)
	}
	lines, err := w.Read(fs.Root)
	if err != nil || lines != nil {
		t.Fatalf("Read = %v, %v; want empty", lines, err)
	}
}

func TestLogFileOwnedByRoot(t *testing.T) {
	sys, w, _ := bootWithLog(t)
	if _, err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st, err := sys.FS.Stat(Path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Owner.UID != 0 || st.Mode != 0o644 {
		t.Fatalf("log file %o owned by %+v, want 644/root", st.Mode, st.Owner)
	}
	// Users cannot overwrite the log.
	err = sys.FS.WriteFile(Path, []byte("tampered"), 0o644, fs.Cred{UID: 1000, GID: 1000})
	if !errors.Is(err, fs.ErrPermission) {
		t.Fatalf("user tampering = %v, want ErrPermission", err)
	}
}

func TestNewWriterValidation(t *testing.T) {
	if _, err := NewWriter(nil, nil); !errors.Is(err, ErrNilArgs) {
		t.Fatalf("NewWriter(nil) = %v", err)
	}
}
