package telemetry

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestLatBucketRoundTrip checks the bucket maths: every value maps to a
// bucket whose lower bound is at most the value, within ~1/16 relative
// error, and bucket indexes are monotone in the value.
func TestLatBucketRoundTrip(t *testing.T) {
	values := []int64{0, 1, 5, 15, 16, 17, 31, 32, 100, 999, 1000, 4096,
		1_000_000, 999_999_999, 1_000_000_000, int64(time.Hour)}
	lastIdx := -1
	for _, v := range values {
		idx := latBucket(v)
		if idx < lastIdx {
			t.Errorf("latBucket(%d)=%d not monotone (prev %d)", v, idx, lastIdx)
		}
		lastIdx = idx
		low := latBucketLow(idx)
		if low > v {
			t.Errorf("latBucketLow(%d)=%d exceeds value %d", idx, low, v)
		}
		if v >= 16 && float64(v-low)/float64(v) > 1.0/16+1e-9 {
			t.Errorf("value %d: bucket low %d further than one sub-bucket away", v, low)
		}
		if idx >= latBucketCount {
			t.Fatalf("latBucket(%d)=%d out of range %d", v, idx, latBucketCount)
		}
	}
}

// TestLatencyHistQuantiles feeds a known distribution and checks the
// quantiles against the exact sorted answer within the histogram's
// resolution.
func TestLatencyHistQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h LatencyHist
	samples := make([]time.Duration, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Log-uniform from ~100ns to ~10ms, the range a decision path
		// under load actually spans.
		d := time.Duration(100 * (1 << uint(rng.Intn(17))))
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if got, want := h.Count(), uint64(len(samples)); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))]
		got := h.Quantile(q)
		if got > exact || float64(exact-got)/float64(exact) > 1.0/8 {
			t.Errorf("Quantile(%v) = %v, exact %v: outside resolution", q, got, exact)
		}
	}
	if got := h.Quantile(1); got != samples[len(samples)-1] {
		t.Errorf("Quantile(1) = %v, want exact max %v", got, samples[len(samples)-1])
	}
	if h.Max() != samples[len(samples)-1] {
		t.Errorf("Max = %v, want %v", h.Max(), samples[len(samples)-1])
	}
}

// TestLatencyHistMerge checks that merging per-session histograms is
// equivalent to observing everything into one.
func TestLatencyHistMerge(t *testing.T) {
	var whole, a, b LatencyHist
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * time.Microsecond
		whole.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	var merged LatencyHist
	merged.Merge(&a)
	merged.Merge(&b)
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count %d != whole %d", merged.Count(), whole.Count())
	}
	if merged.Summary() != whole.Summary() {
		t.Errorf("merged summary %+v != whole %+v", merged.Summary(), whole.Summary())
	}
}

// TestLatencyHistConcurrent hammers one histogram from many goroutines
// (the fleet ingress pattern) and checks nothing is lost.
func TestLatencyHistConcurrent(t *testing.T) {
	var h LatencyHist
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(rng.Intn(1_000_000)))
			}
		}(int64(w))
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*perWorker); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
}

// TestLatencyHistNil checks the nil-handle convention.
func TestLatencyHistNil(t *testing.T) {
	var h *LatencyHist
	h.Observe(time.Second)
	h.Merge(nil)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Summary() != (LatencySummary{}) {
		t.Error("nil LatencyHist must no-op")
	}
}
