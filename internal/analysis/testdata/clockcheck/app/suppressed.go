package app

import "time"

// allowed demonstrates the trailing suppression form.
func allowed() time.Time {
	return time.Now() //overhaul:allow clockcheck fixture demonstrates the trailing allow form
}

// allowedAbove demonstrates the standalone suppression form.
func allowedAbove() time.Time {
	//overhaul:allow clockcheck fixture demonstrates the standalone allow form
	return time.Now()
}
