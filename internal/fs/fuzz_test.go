package fs

import (
	"strings"
	"testing"

	"overhaul/internal/clock"
)

// FuzzPathOperations feeds arbitrary paths through the filesystem's
// entire path-addressed API: nothing may panic, and valid round trips
// must stay consistent.
func FuzzPathOperations(f *testing.F) {
	f.Add("/a/b/c", []byte("data"))
	f.Add("/", []byte{})
	f.Add("//weird//", []byte{1})
	f.Add("relative", []byte("x"))
	f.Add("/a/../b", []byte("y"))
	f.Add("/dev/snd/pcmC0D0c", []byte{0xff})

	f.Fuzz(func(t *testing.T, path string, data []byte) {
		fsys := New(clock.NewSimulated())
		// All of these must be total.
		_, _ = fsys.Stat(path)
		_ = fsys.Mkdir(path, 0o755, Root)
		_ = fsys.MkdirAll(path, 0o755, Root)
		err := fsys.WriteFile(path, data, 0o644, Root)
		if err == nil {
			got, rerr := fsys.ReadFile(path, Root)
			if rerr != nil {
				t.Fatalf("WriteFile succeeded but ReadFile failed: %v", rerr)
			}
			if string(got) != string(data) {
				t.Fatalf("round trip mismatch: %q vs %q", got, data)
			}
			if err := fsys.Unlink(path, Root); err != nil {
				t.Fatalf("Unlink after write: %v", err)
			}
		}
		_, _ = fsys.ReadDir(path, Root)
		_ = fsys.Mkfifo(path, 0o666, Root)
		_ = fsys.Mknod(path, "camera", 0o666, Root)
	})
}

// FuzzSplitPathInvariants checks the path normaliser directly: accepted
// paths must be absolute with clean components.
func FuzzSplitPathInvariants(f *testing.F) {
	f.Add("/ok/path")
	f.Add("")
	f.Add("/")
	f.Add("/a//b")
	f.Fuzz(func(t *testing.T, path string) {
		parts, err := splitPath(path)
		if err != nil {
			return
		}
		if path != "/" && !strings.HasPrefix(path, "/") {
			t.Fatalf("accepted relative path %q", path)
		}
		for _, p := range parts {
			if p == "" || p == "." || p == ".." || strings.Contains(p, "/") {
				t.Fatalf("dirty component %q from %q", p, path)
			}
		}
	})
}
