package auditstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// Binary segment format v2. Files are named seg-<8 hex id>.seg and
// carry the same record stream as the v1 JSONL segments, framed for
// the append hot path instead of for greppability:
//
//	header:  8 bytes magic "OVHSEG2\n"
//	frame:   uvarint payload length | payload | 4-byte LE CRC-32 (IEEE)
//	footer:  0x00 marker | index body | 4-byte LE CRC-32 of body
//	         | 4-byte LE body length | 4 bytes magic "IDX2"
//
// A frame's payload length is never zero, so the single 0x00 marker
// byte unambiguously ends the record stream; the fixed-size trailer
// lets a reader locate the index from the end of the file without
// decoding records. The footer is written only when a segment is
// sealed — an active segment is a pure frame stream whose tail may be
// torn, exactly like v1.
//
// The index body is a sparse block index: uvarint entry count, then
// per entry (uvarint first sequence, uvarint byte offset of the
// block's first frame, zigzag varint max record-time nanos *before*
// the block). Because the third field is a prefix maximum it is
// non-decreasing across entries even when record times are not, so a
// Since seek can binary-search for the last block whose entire prefix
// predates the bound and start decoding there — skipped records can
// never match. The final entry is a sentinel at the footer offset
// whose prefix maximum covers the whole segment.
//
// The record payload is field-wise varint/length-prefixed:
//
//	uvarint seq | flags byte | varint time nanos (if flag timePresent)
//	| varint stamp nanos (if flag stampPresent) | uvarint session
//	| varint pid | 3 × (uvarint length + bytes) op, verdict, reason
const (
	segMagicV2    = "OVHSEG2\n"
	idxMagicV2    = "IDX2"
	idxMarker     = 0x00
	idxTrailerLen = 4 + 4 + len(idxMagicV2) // body CRC + body length + magic
	// crcLen is the per-frame payload checksum size.
	crcLen = 4
	// indexEvery is the block-index granularity: one entry per this
	// many records.
	indexEvery = 32
)

// Record payload flag bits.
const (
	flagDegraded = 1 << iota
	flagTime
	flagStamp
)

// blockEntry is one sparse-index entry: the block's first record and
// the maximum record time seen before it (MinInt64 for the first
// block, so every Since bound finds a starting block).
type blockEntry struct {
	seq       uint64
	off       uint64
	maxBefore int64
}

// timeNanos converts a record time for the binary codec. The zero time
// is carried as an absent field; times outside the int64-nanoseconds
// range (roughly years 1678–2261) do not round-trip and are rejected,
// the binary analogue of the v1 MaxPayload bound.
func timeNanos(t time.Time) (int64, bool, error) {
	if t.IsZero() {
		return 0, false, nil
	}
	if y := t.Year(); y < 1678 || y > 2261 {
		return 0, false, fmt.Errorf("auditstore: time %v outside binary codec range", t)
	}
	return t.UnixNano(), true, nil
}

// FrameEncoder frames records for v2 segments through reusable buffers:
// after warm-up, AppendRecord performs no allocation beyond growth of
// the caller's destination slice.
type FrameEncoder struct {
	payload []byte
}

// AppendRecord appends one framed v2 record to dst and returns the
// extended slice.
func (e *FrameEncoder) AppendRecord(dst []byte, r *Record) ([]byte, error) {
	p, err := appendRecordPayload(e.payload[:0], r)
	if err != nil {
		return dst, err
	}
	e.payload = p
	if len(p) > MaxPayload {
		return dst, fmt.Errorf("auditstore: encode seq %d: payload %d bytes exceeds %d", r.Seq, len(p), MaxPayload)
	}
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	dst = append(dst, p...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(p)), nil
}

// appendRecordPayload renders the record's fields into dst.
func appendRecordPayload(dst []byte, r *Record) ([]byte, error) {
	tn, hasTime, err := timeNanos(r.Time)
	if err != nil {
		return dst, fmt.Errorf("auditstore: encode seq %d: %w", r.Seq, err)
	}
	sn, hasStamp, err := timeNanos(r.Stamp)
	if err != nil {
		return dst, fmt.Errorf("auditstore: encode seq %d: %w", r.Seq, err)
	}
	dst = binary.AppendUvarint(dst, r.Seq)
	var flags byte
	if r.Degraded {
		flags |= flagDegraded
	}
	if hasTime {
		flags |= flagTime
	}
	if hasStamp {
		flags |= flagStamp
	}
	dst = append(dst, flags)
	if hasTime {
		dst = binary.AppendVarint(dst, tn)
	}
	if hasStamp {
		dst = binary.AppendVarint(dst, sn)
	}
	dst = binary.AppendUvarint(dst, r.Session)
	dst = binary.AppendVarint(dst, int64(r.PID))
	dst = appendString(dst, r.Op)
	dst = appendString(dst, r.Verdict)
	return appendString(dst, r.Reason), nil
}

// appendString appends a uvarint length prefix and the string bytes.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeRecordPayload parses one v2 record payload into r. It never
// panics on arbitrary input and rejects trailing garbage, so a frame
// whose CRC matches still cannot smuggle undecodable bytes.
func decodeRecordPayload(p []byte, r *Record) error {
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return fmt.Errorf("auditstore: payload: bad seq varint")
	}
	p = p[n:]
	if len(p) < 1 {
		return fmt.Errorf("auditstore: payload: missing flags")
	}
	flags := p[0]
	p = p[1:]
	if flags&^(flagDegraded|flagTime|flagStamp) != 0 {
		return fmt.Errorf("auditstore: payload: unknown flags %#x", flags)
	}
	*r = Record{Seq: seq, Degraded: flags&flagDegraded != 0}
	if flags&flagTime != 0 {
		tn, n := binary.Varint(p)
		if n <= 0 {
			return fmt.Errorf("auditstore: payload: bad time varint")
		}
		p = p[n:]
		r.Time = time.Unix(0, tn).UTC()
	}
	if flags&flagStamp != 0 {
		sn, n := binary.Varint(p)
		if n <= 0 {
			return fmt.Errorf("auditstore: payload: bad stamp varint")
		}
		p = p[n:]
		r.Stamp = time.Unix(0, sn).UTC()
	}
	session, n := binary.Uvarint(p)
	if n <= 0 {
		return fmt.Errorf("auditstore: payload: bad session varint")
	}
	p = p[n:]
	r.Session = session
	pid, n := binary.Varint(p)
	if n <= 0 || pid < math.MinInt32 || pid > math.MaxInt32 {
		return fmt.Errorf("auditstore: payload: bad pid varint")
	}
	p = p[n:]
	r.PID = int(pid)
	var err error
	if r.Op, p, err = decodeString(p); err != nil {
		return fmt.Errorf("auditstore: payload: op: %w", err)
	}
	if r.Verdict, p, err = decodeString(p); err != nil {
		return fmt.Errorf("auditstore: payload: verdict: %w", err)
	}
	if r.Reason, p, err = decodeString(p); err != nil {
		return fmt.Errorf("auditstore: payload: reason: %w", err)
	}
	if len(p) != 0 {
		return fmt.Errorf("auditstore: payload: %d trailing bytes", len(p))
	}
	return nil
}

// decodeString parses a length-prefixed string and returns the rest.
func decodeString(p []byte) (string, []byte, error) {
	l, n := binary.Uvarint(p)
	if n <= 0 || l > uint64(len(p)-n) {
		return "", nil, fmt.Errorf("bad string length")
	}
	return string(p[n : n+int(l)]), p[n+int(l):], nil
}

// appendFooter appends the sealed-segment footer (marker, index body,
// trailer) to dst.
func appendFooter(dst []byte, entries []blockEntry) []byte {
	dst = append(dst, idxMarker)
	bodyStart := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, e.seq)
		dst = binary.AppendUvarint(dst, e.off)
		dst = binary.AppendVarint(dst, e.maxBefore)
	}
	body := dst[bodyStart:]
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	return append(dst, idxMagicV2...)
}

// parseFooter reads the block index from the end of a v2 segment.
// It returns nil when the file carries no (intact) footer — an active
// or torn segment — in which case callers fall back to a sequential
// decode; the footer is an optimization, never a correctness input.
func parseFooter(data []byte) []blockEntry {
	if len(data) < idxTrailerLen+1 || string(data[len(data)-len(idxMagicV2):]) != idxMagicV2 {
		return nil
	}
	bodyLen := int(binary.LittleEndian.Uint32(data[len(data)-8:]))
	end := len(data) - idxTrailerLen
	if bodyLen <= 0 || bodyLen > end-1 {
		return nil
	}
	body := data[end-bodyLen : end]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(data)-12:]) {
		return nil
	}
	if data[end-bodyLen-1] != idxMarker {
		return nil
	}
	count, n := binary.Uvarint(body)
	if n <= 0 || count > uint64(len(body)) {
		return nil
	}
	body = body[n:]
	entries := make([]blockEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		var e blockEntry
		var n int
		if e.seq, n = binary.Uvarint(body); n <= 0 {
			return nil
		}
		body = body[n:]
		if e.off, n = binary.Uvarint(body); n <= 0 {
			return nil
		}
		body = body[n:]
		if e.maxBefore, n = binary.Varint(body); n <= 0 {
			return nil
		}
		body = body[n:]
		entries = append(entries, e)
	}
	if len(body) != 0 {
		return nil
	}
	return entries
}

// seekBlock returns the byte offset at which a Since scan over a
// sealed v2 segment may start: the first frame of the last block whose
// prefix maximum time is strictly before since. Every skipped record
// is older than the bound and could not have matched.
func seekBlock(entries []blockEntry, since time.Time) (uint64, bool) {
	nanos, ok, err := timeNanos(since)
	if !ok || err != nil {
		return 0, false
	}
	lo, hi := 0, len(entries) // invariant: entries[:lo] have maxBefore < nanos
	for lo < hi {
		mid := (lo + hi) / 2
		if entries[mid].maxBefore < nanos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, false
	}
	return entries[lo-1].off, true
}

// EncodeBinaryRecord frames one record in the v2 binary format — the
// unit a v2 segment's record stream is made of (a segment is the
// 8-byte magic, these frames, and optionally a sealed footer).
// Exported for tests and tooling; the store's hot path reuses a pooled
// FrameEncoder instead.
func EncodeBinaryRecord(r Record) ([]byte, error) {
	var e FrameEncoder
	return e.AppendRecord(nil, &r)
}

// BinarySegmentMagic returns the 8-byte v2 segment header, for tools
// that assemble segments from EncodeBinaryRecord frames.
func BinarySegmentMagic() []byte {
	return []byte(segMagicV2)
}

// DecodeBinarySegment decodes a v2 segment until the input is
// exhausted, the footer marker is reached, or a frame fails a check.
// Mirrors DecodeSegment: it returns the decoded records, the bytes
// consumed by them (header included), and the truncation point when
// the input did not decode cleanly. It never panics on arbitrary
// input (FuzzBinarySegmentDecode pins this).
func DecodeBinarySegment(data []byte) ([]Record, int, *Truncation) {
	recs, _, n, trunc := decodeBinarySegmentOffsets(data, nil)
	return recs, n, trunc
}

// decodeBinarySegmentOffsets is DecodeBinarySegment plus the byte
// offset of every decoded record. offs may be nil when the caller does
// not need offsets; otherwise it is appended to and returned.
func decodeBinarySegmentOffsets(data []byte, offs []int) ([]Record, []int, int, *Truncation) {
	if len(data) < len(segMagicV2) || string(data[:len(segMagicV2)]) != segMagicV2 {
		return nil, offs, 0, &Truncation{Offset: 0, Reason: "bad v2 segment header"}
	}
	var recs []Record
	end, trunc := streamFrames(data, len(segMagicV2), func(r *Record, off int) bool {
		recs = append(recs, *r)
		if offs != nil {
			offs = append(offs, off)
		}
		return true
	})
	return recs, offs, end, trunc
}

// streamFrames walks the frame stream of a v2 segment starting at byte
// offset off (the caller has already checked the header), handing each
// decoded record to emit by pointer into one reusable Record — the
// zero-copy core under both the batch decoder and the cold segment
// scanner. It returns the bytes cleanly consumed and the truncation
// point, if any; emit returning false stops the walk early with no
// truncation.
func streamFrames(data []byte, off int, emit func(r *Record, off int) bool) (int, *Truncation) {
	var r Record
	for off < len(data) {
		if data[off] == idxMarker {
			// Footer marker: the record stream ends here. A damaged
			// footer is reported as truncation so recovery normalizes
			// the segment, but the records before it are all good.
			if parseFooter(data) == nil {
				return off, &Truncation{Offset: off, Reason: "torn segment footer"}
			}
			return len(data), nil
		}
		rest := data[off:]
		plen, n := binary.Uvarint(rest)
		if n <= 0 {
			return off, &Truncation{Offset: off, Reason: "malformed frame length"}
		}
		if plen == 0 || plen > MaxPayload {
			return off, &Truncation{Offset: off, Reason: fmt.Sprintf("implausible payload length %d", plen)}
		}
		if uint64(len(rest)-n) < plen+crcLen {
			return off, &Truncation{Offset: off, Reason: "torn payload"}
		}
		payload := rest[n : n+int(plen)]
		crc := binary.LittleEndian.Uint32(rest[n+int(plen):])
		if crc32.ChecksumIEEE(payload) != crc {
			return off, &Truncation{Offset: off, Reason: "crc mismatch"}
		}
		if err := decodeRecordPayload(payload, &r); err != nil {
			return off, &Truncation{Offset: off, Reason: "malformed record payload"}
		}
		if !emit(&r, off) {
			return off, nil
		}
		off += n + int(plen) + crcLen
	}
	return off, nil
}
