package telemetry

import (
	"bytes"
	"encoding/json"
	"strconv"
	"sync"
	"time"
)

// FlightEvent is one entry in the flight-recorder ring: a terse record
// of something the enforcement stack did or observed. Kind is a short
// taxonomy tag ("denial", "degradation", "fault", "decision",
// "violation", ...); Detail is human-readable.
type FlightEvent struct {
	Seq       uint64    `json:"seq"`
	Time      time.Time `json:"time"`
	Subsystem string    `json:"subsystem"`
	Kind      string    `json:"kind"`
	Detail    string    `json:"detail"`
	Trace     TraceID   `json:"trace,omitempty"`
	Span      SpanID    `json:"span,omitempty"`

	// Structured decision payload (RecordDecision). Detail is rendered
	// from it lazily when the ring is snapshot, so recording a decision
	// allocates nothing.
	decPID     int
	decOp      string
	decVerdict string
	decReason  string
}

// render materialises Detail from the structured decision fields. Only
// snapshot paths call it; the ring keeps the raw fields.
func (ev *FlightEvent) render() {
	if ev.Detail == "" && ev.decOp != "" {
		ev.Detail = "pid=" + strconv.Itoa(ev.decPID) + " op=" + ev.decOp +
			" " + ev.decVerdict + ": " + ev.decReason
	}
}

// FlightDump is a snapshot of the ring taken the moment something went
// wrong. Events are oldest-first; the last events are therefore the
// ones that explain the trip.
type FlightDump struct {
	Seq    uint64        `json:"seq"`
	Time   time.Time     `json:"time"`
	Reason string        `json:"reason"`
	Events []FlightEvent `json:"events"`
}

// flightStore is the flight-recorder ring plus its retained dumps,
// behind their own lock so recording an event never contends with the
// tracer or the metrics registry.
type flightStore struct {
	mu           sync.Mutex
	seq          uint64
	ring         []FlightEvent // bounded by flightCap
	head         int
	n            int
	dumps        []FlightDump // bounded by dumpCap
	dumpsDropped uint64
}

// RecordEvent appends an event to the flight ring. ctx may be zero.
func (r *Recorder) RecordEvent(ctx SpanContext, subsystem, kind, detail string) {
	if r == nil {
		return
	}
	r.recordEvent(FlightEvent{
		Time:      r.now(),
		Subsystem: subsystem,
		Kind:      kind,
		Detail:    detail,
		Trace:     ctx.Trace,
		Span:      ctx.Span,
	})
}

// RecordDecision appends a Kind "decision" event carrying the verdict
// fields in structured form. Unlike RecordEvent with a concatenated
// detail string, this is allocation-free: the hot decision path hands
// over the pieces and snapshot accessors render "pid=N op=X verdict:
// reason" on demand.
func (r *Recorder) RecordDecision(ctx SpanContext, subsystem string, pid int, op, verdict, reason string) {
	if r == nil {
		return
	}
	now := r.now()
	f := &r.flight
	f.mu.Lock()
	// Filled in place: decisions are the hot path, and FlightEvent is
	// large enough that the construct-then-copy shape recordEvent uses
	// shows up in profiles.
	s := r.slotLocked()
	s.Time = now
	s.Subsystem = subsystem
	s.Kind = "decision"
	s.Trace = ctx.Trace
	s.Span = ctx.Span
	s.decPID = pid
	s.decOp = op
	s.decVerdict = verdict
	s.decReason = reason
	f.mu.Unlock()
}

// recordEvent stamps the sequence number and pushes ev into the ring,
// evicting the oldest entry when full.
func (r *Recorder) recordEvent(ev FlightEvent) {
	f := &r.flight
	f.mu.Lock()
	r.recordEventLocked(ev)
	f.mu.Unlock()
}

// recordEventLocked is recordEvent with f.mu already held (TripFlight
// records and snapshots under one critical section).
func (r *Recorder) recordEventLocked(ev FlightEvent) {
	s := r.slotLocked()
	seq := s.Seq
	*s = ev
	s.Seq = seq
}

// slotLocked claims the next ring slot — sequence-stamped and
// otherwise zeroed — evicting the oldest entry when full. Requires
// f.mu held; the caller fills the slot before unlocking.
func (r *Recorder) slotLocked() *FlightEvent {
	f := &r.flight
	f.seq++
	if f.ring == nil {
		f.ring = make([]FlightEvent, r.flightCap)
	}
	var s *FlightEvent
	if f.n < r.flightCap {
		s = &f.ring[(f.head+f.n)%r.flightCap]
		f.n++
	} else {
		s = &f.ring[f.head]
		f.head = (f.head + 1) % r.flightCap
	}
	*s = FlightEvent{Seq: f.seq}
	return s
}

// TripFlight records a trip event and snapshots the ring into a dump.
// Call it when a denial, a degradation, or an invariant violation
// fires; the dump's final events then explain what led up to it.
func (r *Recorder) TripFlight(ctx SpanContext, subsystem, reason string) {
	if r == nil {
		return
	}
	now := r.now()
	f := &r.flight
	f.mu.Lock()
	defer f.mu.Unlock()
	r.recordEventLocked(FlightEvent{
		Time:      now,
		Subsystem: subsystem,
		Kind:      "trip",
		Detail:    reason,
		Trace:     ctx.Trace,
		Span:      ctx.Span,
	})
	events := make([]FlightEvent, 0, f.n)
	for i := 0; i < f.n; i++ {
		ev := f.ring[(f.head+i)%r.flightCap]
		ev.render()
		events = append(events, ev)
	}
	d := FlightDump{
		Seq:    f.seq,
		Time:   now,
		Reason: reason,
		Events: events,
	}
	if len(f.dumps) >= r.dumpCap {
		copy(f.dumps, f.dumps[1:])
		f.dumps[len(f.dumps)-1] = d
		f.dumpsDropped++
	} else {
		f.dumps = append(f.dumps, d)
	}
}

// FlightEvents returns the current ring contents, oldest first.
func (r *Recorder) FlightEvents() []FlightEvent {
	if r == nil {
		return nil
	}
	f := &r.flight
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, f.n)
	for i := 0; i < f.n; i++ {
		ev := f.ring[(f.head+i)%r.flightCap]
		ev.render()
		out = append(out, ev)
	}
	return out
}

// FlightDumps returns retained dumps, oldest first.
func (r *Recorder) FlightDumps() []FlightDump {
	if r == nil {
		return nil
	}
	f := &r.flight
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightDump, len(f.dumps))
	copy(out, f.dumps)
	return out
}

// LastFlightDump returns the most recent dump, if any.
func (r *Recorder) LastFlightDump() (FlightDump, bool) {
	if r == nil {
		return FlightDump{}, false
	}
	f := &r.flight
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.dumps) == 0 {
		return FlightDump{}, false
	}
	return f.dumps[len(f.dumps)-1], true
}

// JSONL renders the dump as one JSON object per line: a header line
// (seq, time, reason) followed by one line per event, oldest first.
func (d FlightDump) JSONL() ([]byte, error) {
	var buf bytes.Buffer
	hdr := struct {
		Seq    uint64    `json:"seq"`
		Time   time.Time `json:"time"`
		Reason string    `json:"reason"`
		Events int       `json:"events"`
	}{d.Seq, d.Time, d.Reason, len(d.Events)}
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(hdr); err != nil {
		return nil, err
	}
	for _, ev := range d.Events {
		if err := enc.Encode(ev); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}
