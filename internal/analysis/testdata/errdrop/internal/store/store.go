// Package store is an errdrop fixture: silently dropped error returns
// in internal packages are flagged; explicit discards are not.
package store

import "errors"

// save returns an error that callers must not drop.
func save(path string) error {
	if path == "" {
		return errors.New("empty path")
	}
	return nil
}

type closer struct{}

// Close returns an error by stdlib convention.
func (c *closer) Close() error { return nil }

// note returns nothing; bare calls are fine.
func note() {}

// Flow exercises every drop pattern.
func Flow(c *closer) error {
	save("dropped") // want "save"
	c.Close()       // want "Close"
	_ = save("explicit discard is visible")
	defer c.Close() // defer cleanups have nowhere to put the error
	note()
	if err := save("handled"); err != nil {
		return err
	}
	save("annotated") //overhaul:allow errdrop fixture demonstrates suppression
	return nil
}
