package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	tests := []struct {
		comment  string
		analyzer string
		reason   string
		isAllow  bool
	}{
		{"//overhaul:allow clockcheck benchmark timing", "clockcheck", "benchmark timing", true},
		{"//overhaul:allow errdrop reason with  spaces kept", "errdrop", "reason with spaces kept", true},
		{"//overhaul:allow clockcheck", "clockcheck", "", true},
		{"//overhaul:allow", "", "", true},
		{"//overhaul:allowx not an allow", "", "", false},
		{"// ordinary comment", "", "", false},
		{"//overhaul:deny clockcheck nope", "", "", false},
	}
	for _, tt := range tests {
		analyzer, reason, ok := parseAllow(tt.comment)
		if ok != tt.isAllow || analyzer != tt.analyzer || reason != tt.reason {
			t.Errorf("parseAllow(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tt.comment, analyzer, reason, ok, tt.analyzer, tt.reason, tt.isAllow)
		}
	}
}

// writeModule materialises sources into a temp dir and loads them.
func writeModule(t *testing.T, files map[string]string) *Module {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestSuppressionScope(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"app/app.go": `package app

import "time"

func trailing() time.Time {
	return time.Now() //overhaul:allow clockcheck trailing form
}

func standalone() time.Time {
	//overhaul:allow clockcheck standalone form
	return time.Now()
}

func wrongAnalyzer() time.Time {
	//overhaul:allow lockcheck wrong analyzer listed
	return time.Now()
}

func tooFarAbove() time.Time {
	//overhaul:allow clockcheck two lines above the finding

	return time.Now()
}
`,
	})
	diags := Run(mod, []*Analyzer{Clockcheck})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (wrongAnalyzer and tooFarAbove):\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "clockcheck" {
			t.Errorf("unexpected analyzer in %s", d)
		}
	}
	if diags[0].Line != 16 || diags[1].Line != 22 {
		t.Errorf("diagnostics at lines %d and %d, want 16 and 22", diags[0].Line, diags[1].Line)
	}
}

func TestMalformedAllowReported(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"app/app.go": `package app

//overhaul:allow clockcheck
func missingReason() {}

//overhaul:allow
func missingEverything() {}
`,
	})
	diags := Run(mod, []*Analyzer{Clockcheck})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 malformed-allow reports:\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "allow" {
			t.Errorf("malformed allow reported under %q, want \"allow\"", d.Analyzer)
		}
		if !strings.Contains(d.Message, "malformed suppression") {
			t.Errorf("unexpected message: %s", d.Message)
		}
	}
}

func TestMalformedAllowCannotSuppress(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"app/app.go": `package app

import "time"

func f() time.Time {
	return time.Now() //overhaul:allow clockcheck
}
`,
	})
	diags := Run(mod, []*Analyzer{Clockcheck})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want the finding plus the malformed-allow report:\n%v", len(diags), diags)
	}
}

func TestReturnsErrorIndex(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"a/a.go": `package a

func Fails() error { return nil }

func Clean() int { return 0 }

type T struct{}

func (T) Method() (int, error) { return 0, nil }
`,
	})
	for name, want := range map[string]bool{"Fails": true, "Method": true, "Clean": false, "Absent": false} {
		if got := mod.ReturnsError(name); got != want {
			t.Errorf("ReturnsError(%q) = %v, want %v", name, got, want)
		}
	}
}
