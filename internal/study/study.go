// Package study reproduces the paper's usability experiment (§V-B): 46
// participants perform two tasks on an Overhaul machine.
//
// Task 1 — transparency: each participant places a Skype call on an
// Overhaul-enabled machine and rates the difficulty against their prior
// Skype experience on a 5-point Likert scale. In the paper all 46 rated
// the experience identical (score 1); in the simulation a participant
// reports 1 whenever the call completes with no functional difference
// (no prompt, no failure, no added steps), which Overhaul guarantees.
//
// Task 2 — alert effectiveness: while the participant performs a web
// search, a hidden background process triggers a camera access at a
// random time; Overhaul blocks it and raises a visual alert. The paper
// observed 24 participants interrupt the task immediately, 16 notice but
// continue (reporting when prompted), and 6 miss the alert. The
// simulation draws each participant's attentiveness from a seeded
// distribution calibrated to those proportions, so the reproduction
// preserves the paper's shape (most users notice, a small minority miss
// the alert) with seed-dependent counts.
package study

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"overhaul/internal/apps"
	"overhaul/internal/core"
	"overhaul/internal/devfs"
	"overhaul/internal/malware"
	"overhaul/internal/xserver"
)

// DefaultParticipants matches the paper's cohort size.
const DefaultParticipants = 46

// Outcome classifies a participant's reaction to the alert in task 2.
type Outcome int

// Outcomes.
const (
	OutcomeInterrupted Outcome = iota + 1 // stopped the task, reported immediately
	OutcomeNoticed                        // saw the alert, reported when prompted
	OutcomeMissed                         // did not notice anything unusual
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeInterrupted:
		return "interrupted task and reported"
	case OutcomeNoticed:
		return "noticed, reported when prompted"
	case OutcomeMissed:
		return "missed the alert"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result is the aggregate study outcome.
type Result struct {
	Participants int `json:"participants"`
	// Task 1.
	LikertScores []int `json:"likertScores"` // one per participant, 1..5
	// Task 2.
	Interrupted int `json:"interrupted"`
	Noticed     int `json:"noticed"`
	Missed      int `json:"missed"`
}

// PaperResult is the published outcome for comparison.
func PaperResult() Result {
	scores := make([]int, DefaultParticipants)
	for i := range scores {
		scores[i] = 1
	}
	return Result{
		Participants: DefaultParticipants,
		LikertScores: scores,
		Interrupted:  24,
		Noticed:      16,
		Missed:       6,
	}
}

// attention models how likely each reaction is, calibrated to the
// paper's observed frequencies (24/46, 16/46, 6/46).
var attention = struct {
	pInterrupt float64
	pNotice    float64
}{
	pInterrupt: 24.0 / 46.0,
	pNotice:    16.0 / 46.0,
}

// Config parameterises a study run.
type Config struct {
	Participants int   // zero selects DefaultParticipants
	Seed         int64 // RNG seed for the attention model
}

// ErrStudySetup wraps environment failures.
var ErrStudySetup = errors.New("study: setup failed")

// Run executes the full two-task study, one fresh Overhaul machine per
// participant (as in the paper, where the test machine was reset
// between sessions).
func Run(cfg Config) (Result, error) {
	n := cfg.Participants
	if n <= 0 {
		n = DefaultParticipants
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	res := Result{Participants: n, LikertScores: make([]int, 0, n)}
	for i := 0; i < n; i++ {
		score, err := runTask1()
		if err != nil {
			return Result{}, fmt.Errorf("%w: participant %d task 1: %v", ErrStudySetup, i+1, err)
		}
		res.LikertScores = append(res.LikertScores, score)

		outcome, err := runTask2(rng)
		if err != nil {
			return Result{}, fmt.Errorf("%w: participant %d task 2: %v", ErrStudySetup, i+1, err)
		}
		switch outcome {
		case OutcomeInterrupted:
			res.Interrupted++
		case OutcomeNoticed:
			res.Noticed++
		case OutcomeMissed:
			res.Missed++
		}
	}
	return res, nil
}

// runTask1 places a Skype call under Overhaul and scores the
// experience: 1 (identical) if the call succeeded with no prompts and no
// extra steps, escalating with each observed difference.
func runTask1() (int, error) {
	sys, mic, cam, err := core.BootDefault()
	if err != nil {
		return 0, err
	}
	v, err := apps.NewVideoConf(sys, "skype", mic, cam, false)
	if err != nil {
		return 0, err
	}
	sys.Settle(2 * xserver.DefaultVisibilityThreshold)

	score := 1
	if err := v.PlaceCall(); err != nil {
		// A blocked legitimate call would be a severe usability hit.
		score = 5
	}
	// Overhaul never prompts; if it did, participants would notice
	// immediately. The display-only alert does not interfere with the
	// call, matching "no functional difference".
	return score, nil
}

// runTask2 runs the hidden-camera-access scenario for one participant
// and samples their reaction from the attention model.
func runTask2(rng *rand.Rand) (Outcome, error) {
	sys, err := core.Boot(core.Options{Enforce: true, AlertSecret: "tabby-cat"})
	if err != nil {
		return 0, err
	}
	cam, err := sys.Helper.Attach(devfs.ClassCamera)
	if err != nil {
		return 0, err
	}
	// The participant browses (a real foreground app with interaction).
	browser, err := apps.NewBrowser(sys, "firefox")
	if err != nil {
		return 0, err
	}
	sys.Settle(2 * xserver.DefaultVisibilityThreshold)
	if err := browser.App().Click(); err != nil {
		return 0, err
	}

	// The hidden process triggers at a random time into the task.
	sys.Settle(time.Duration(1+rng.Intn(30)) * time.Second)
	spy, err := malware.Install(sys, cam)
	if err != nil {
		return 0, err
	}
	spy.StealDevice() // pointed at the camera node
	if spy.Report().TotalStolen() != 0 {
		return 0, errors.New("camera access was not blocked")
	}
	alerts := sys.X.ActiveAlerts()
	if len(alerts) != 1 || !alerts[0].Blocked {
		return 0, errors.New("no blocked-access alert displayed")
	}

	// Sample the participant's reaction.
	r := rng.Float64()
	switch {
	case r < attention.pInterrupt:
		return OutcomeInterrupted, nil
	case r < attention.pInterrupt+attention.pNotice:
		return OutcomeNoticed, nil
	default:
		return OutcomeMissed, nil
	}
}
