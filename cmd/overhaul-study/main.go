// Command overhaul-study reproduces the §V-B usability experiment: 46
// participants place a Skype call on an Overhaul machine (transparency,
// 5-point Likert) and then perform a web search while a hidden process
// triggers a blocked camera access and a visual alert (alert
// effectiveness).
//
// Usage:
//
//	overhaul-study [-n 46] [-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"overhaul/internal/study"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-study:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", study.DefaultParticipants, "number of participants")
	seed := flag.Int64("seed", 1, "attention-model RNG seed")
	asJSON := flag.Bool("json", false, "emit results as JSON")
	fatigue := flag.Bool("fatigue", false, "also run the prompt-fatigue comparison (alerts vs prompts)")
	flag.Parse()

	res, err := study.Run(study.Config{Participants: *n, Seed: *seed})
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	paper := study.PaperResult()

	fmt.Printf("Usability study (§V-B), %d participants, seed %d\n\n", res.Participants, *seed)

	identical := 0
	for _, s := range res.LikertScores {
		if s == 1 {
			identical++
		}
	}
	fmt.Println("Task 1 — transparency (Skype call under Overhaul):")
	fmt.Printf("  rated identical to stock Skype (Likert 1): %d/%d   (paper: %d/%d)\n\n",
		identical, res.Participants, len(paper.LikertScores), paper.Participants)

	fmt.Println("Task 2 — alert effectiveness (hidden camera access blocked):")
	fmt.Printf("  %-38s %4d   (paper: %d)\n", "interrupted task, reported immediately", res.Interrupted, paper.Interrupted)
	fmt.Printf("  %-38s %4d   (paper: %d)\n", "noticed, reported when prompted", res.Noticed, paper.Noticed)
	fmt.Printf("  %-38s %4d   (paper: %d)\n", "missed the alert", res.Missed, paper.Missed)
	total := res.Interrupted + res.Noticed
	fmt.Printf("\n  alert noticed by %d/%d participants (paper: 40/46)\n", total, res.Participants)

	if *fatigue {
		fr, err := study.RunPromptFatigue(study.FatigueConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println("\nPrompt-fatigue comparison (why the paper chose alerts over prompts):")
		fmt.Printf("  %d prompts, %d malicious\n", fr.Prompts, fr.Malicious)
		fmt.Printf("  prompt model: %d malicious requests ALLOWED by the habituated user, %d legitimate denied\n",
			fr.PromptMisgrants, fr.PromptFalseDenies)
		fmt.Printf("  alert model : %d malicious requests allowed (blocked automatically), %d alerts went unnoticed\n",
			fr.AlertMisgrants, fr.AlertMissedNotices)
	}
	return nil
}
