package analysis

import (
	"go/ast"
	"strings"
)

// Printcheck keeps internal packages silent. Overhaul's observable
// behaviour flows through internal/auditlog (the tamper-evident
// decision log users audit) and internal/trace (the protocol traces
// behind the paper's figures); ad-hoc fmt.Print*/log output from
// library code would bypass both, interleave with benchmark output,
// and make golden traces nondeterministic. Writing to an injected
// io.Writer (fmt.Fprintf) is fine — the caller chooses the sink.
var Printcheck = &Analyzer{
	Name: "printcheck",
	Doc: "internal packages must not print: route output through " +
		"internal/auditlog or internal/trace",
	Run: runPrintcheck,
}

// printFuncs are the direct-to-stdout fmt entry points.
var printFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

func runPrintcheck(pass *Pass) {
	if !strings.Contains(pass.Pkg.Dir, "internal") {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isTestFile(f.Name) {
			continue
		}
		for _, imp := range f.AST.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "log" {
				pass.Reportf(imp.Pos(),
					"internal packages must not import log: use internal/auditlog or internal/trace")
			}
		}
		fmtName := importName(f.AST, "fmt")
		osName := importName(f.AST, "os")
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if qual, name, ok := selectorCall(node); ok && qual == fmtName && fmtName != "" && printFuncs[name] {
					pass.Reportf(node.Pos(),
						"fmt.%s writes to stdout from an internal package: return the string or take an io.Writer", name)
				}
				if id, ok := node.Fun.(*ast.Ident); ok && (id.Name == "print" || id.Name == "println") {
					pass.Reportf(node.Pos(), "builtin %s in an internal package: remove debug output", id.Name)
				}
			case *ast.SelectorExpr:
				if id, ok := node.X.(*ast.Ident); ok && osName != "" && id.Name == osName &&
					(node.Sel.Name == "Stdout" || node.Sel.Name == "Stderr") {
					pass.Reportf(node.Pos(),
						"os.%s referenced from an internal package: take an io.Writer from the caller", node.Sel.Name)
				}
			}
			return true
		})
	}
}
