package fleet

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"overhaul/internal/monitor"
)

// scriptOp is one step of a deterministic session script. The same
// script is replayed against a shared-Tables fleet session and a
// duplicated-Tables standalone session; every observable output must
// match byte for byte.
type scriptOp struct {
	kind  int // 0 spawn, 1 fork, 2 exit, 3 notify, 4 decide, 5 degrade, 6 undegrade
	proc  int // index into the script's pid list (fork parent / exit / notify / decide target)
	op    monitor.Op
	nanos int64
}

// genScript builds a reproducible random script that exercises every
// verdict path: fresh grants, stale denials, never-stamped denials,
// missing processes, fork inheritance, and degraded-mode fail-closed.
func genScript(rng *rand.Rand, steps int) []scriptOp {
	t := base.UnixNano()
	ops := []monitor.Op{monitor.OpMic, monitor.OpCam, monitor.OpPaste, monitor.OpScreen, monitor.OpOther}
	script := []scriptOp{{kind: 0}} // always start with one spawn
	pids := 1
	for i := 0; i < steps; i++ {
		// Time advances by a random 0–1.5s per step, so op/stamp gaps
		// straddle the 2s threshold in both directions.
		t += rng.Int63n(int64(1500 * time.Millisecond))
		switch r := rng.Intn(100); {
		case r < 10:
			script = append(script, scriptOp{kind: 0})
			pids++
		case r < 18 && pids > 0:
			script = append(script, scriptOp{kind: 1, proc: rng.Intn(pids)})
			pids++
		case r < 24 && pids > 1:
			script = append(script, scriptOp{kind: 2, proc: rng.Intn(pids)})
		case r < 50 && pids > 0:
			script = append(script, scriptOp{kind: 3, proc: rng.Intn(pids), nanos: t})
		case r < 94 && pids > 0:
			// Decide sometimes targets a pid index past what was ever
			// spawned, covering the no-such-process path.
			proc := rng.Intn(pids + 2)
			script = append(script, scriptOp{kind: 4, proc: proc, op: ops[rng.Intn(len(ops))], nanos: t})
		case r < 97:
			script = append(script, scriptOp{kind: 5})
		default:
			script = append(script, scriptOp{kind: 6})
		}
	}
	return script
}

// sessionTrace is everything observable about a replay: the exact
// verdict/error sequence, the final audit ring, and the counters.
type sessionTrace struct {
	verdicts []monitor.Verdict
	errs     []string
	audit    []byte // JSON-encoded audit ring
	stats    SessionStats
}

// replay runs a script against one session and records its trace. It
// panics rather than taking a *testing.T so it is safe to run from
// spawned goroutines (Fatal is main-goroutine-only).
func replay(s *Session, script []scriptOp) sessionTrace {
	var tr sessionTrace
	var pids []int
	pidAt := func(i int) int {
		if i < len(pids) {
			return pids[i]
		}
		return 1 << 30 // never-spawned pid: exercises ErrNoSuchProcess
	}
	for _, op := range script {
		switch op.kind {
		case 0:
			pid, err := s.Spawn()
			if err != nil {
				panic(err)
			}
			pids = append(pids, pid)
		case 1:
			pid, err := s.Fork(pidAt(op.proc))
			tr.errs = append(tr.errs, errString(err))
			if err == nil {
				pids = append(pids, pid)
			}
		case 2:
			tr.errs = append(tr.errs, errString(s.Exit(pidAt(op.proc))))
		case 3:
			tr.errs = append(tr.errs, errString(s.NotifyNanos(pidAt(op.proc), op.nanos)))
		case 4:
			v, err := s.DecideNanos(pidAt(op.proc), op.op, op.nanos)
			tr.verdicts = append(tr.verdicts, v)
			tr.errs = append(tr.errs, errString(err))
		case 5:
			s.SetDegraded("scripted degradation")
		case 6:
			s.ClearDegraded()
		}
	}
	audit, err := json.Marshal(s.Audit())
	if err != nil {
		panic(err)
	}
	tr.audit = audit
	tr.stats = s.StatsSnapshot()
	return tr
}

// errString canonicalizes an error for stream comparison. Session
// errors embed the session ID (which legitimately differs between a
// fleet session and its standalone twin), so compare by sentinel.
func errString(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrNoSuchProcess):
		return "no-such-process"
	case errors.Is(err, ErrSessionClosed):
		return "session-closed"
	default:
		return err.Error()
	}
}

// TestFleetEquivalentToStandalone is the fleet correctness property: a
// fleet of N sessions sharing one copy-on-write Tables snapshot must be
// observably identical — byte-identical audit streams, identical
// verdict/error sequences, identical counters — to N isolated sessions
// each holding a private copy of the tables. If sharing were ever
// visible (a map mutated in place, a policy field aliased mutably),
// this test is what breaks.
func TestFleetEquivalentToStandalone(t *testing.T) {
	const sessions = 32
	const steps = 400

	shared := newTestFleet(t, Config{})

	for i := 0; i < sessions; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		script := genScript(rng, steps)

		fs := shared.CreateSession()
		iso := shared.NewStandalone()

		got := replay(fs, script)
		want := replay(iso, script)

		if !reflect.DeepEqual(got.verdicts, want.verdicts) {
			t.Fatalf("session %d: verdict streams diverge", i)
		}
		if !reflect.DeepEqual(got.errs, want.errs) {
			t.Fatalf("session %d: error streams diverge", i)
		}
		if string(got.audit) != string(want.audit) {
			t.Fatalf("session %d: audit streams not byte-identical\nfleet:      %s\nstandalone: %s", i, got.audit, want.audit)
		}
		if got.stats != want.stats {
			t.Fatalf("session %d: stats diverge: fleet %+v standalone %+v", i, got.stats, want.stats)
		}
	}
}

// TestFleetSessionsAreIndependent replays the same scripts concurrently
// across fleet sessions and checks each trace still matches its
// isolated twin — cross-session interference through the shared
// snapshot or the session table would corrupt some trace.
func TestFleetSessionsAreIndependent(t *testing.T) {
	const sessions = 16
	const steps = 300

	shared := newTestFleet(t, Config{})
	scripts := make([][]scriptOp, sessions)
	want := make([]sessionTrace, sessions)
	for i := range scripts {
		scripts[i] = genScript(rand.New(rand.NewSource(int64(5000+i))), steps)
		want[i] = replay(shared.NewStandalone(), scripts[i])
	}

	got := make([]sessionTrace, sessions)
	done := make(chan int, sessions)
	for i := 0; i < sessions; i++ {
		s := shared.CreateSession()
		go func(i int, s *Session) {
			got[i] = replay(s, scripts[i])
			done <- i
		}(i, s)
	}
	for range scripts {
		<-done
	}
	for i := range scripts {
		if !reflect.DeepEqual(got[i].verdicts, want[i].verdicts) ||
			!reflect.DeepEqual(got[i].errs, want[i].errs) ||
			string(got[i].audit) != string(want[i].audit) ||
			got[i].stats != want[i].stats {
			t.Errorf("session %d diverged from its isolated twin under concurrency", i)
		}
	}
}
