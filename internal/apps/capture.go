package apps

import (
	"fmt"
	"time"

	"overhaul/internal/core"
	"overhaul/internal/xserver"
)

// Screenshot is a screenshot utility (Shutter / GNOME Screenshot-like).
type Screenshot struct {
	sys *core.System
	app *core.App
}

// NewScreenshot launches the tool.
func NewScreenshot(sys *core.System, name string) (*Screenshot, error) {
	app, err := sys.Launch(name)
	if err != nil {
		return nil, fmt.Errorf("screenshot: %w", err)
	}
	return &Screenshot{sys: sys, app: app}, nil
}

// App exposes the underlying harness handle.
func (s *Screenshot) App() *core.App { return s.app }

// Capture simulates the user clicking "shoot" and the tool grabbing the
// full screen.
func (s *Screenshot) Capture() ([]byte, error) {
	if err := s.app.Click(); err != nil {
		return nil, fmt.Errorf("screenshot: %w", err)
	}
	s.sys.Settle(100 * time.Millisecond)
	img, err := s.app.Client.GetImage(xserver.Root)
	if err != nil {
		return nil, fmt.Errorf("screenshot: %w: %v", ErrBlocked, err)
	}
	return img, nil
}

// CaptureDelayed simulates the delayed-shot feature some tools offer:
// click now, capture after the delay. With any delay beyond δ the
// interaction expires before the grab — the known functional limitation
// §V-C reports.
func (s *Screenshot) CaptureDelayed(delay time.Duration) ([]byte, error) {
	if err := s.app.Click(); err != nil {
		return nil, fmt.Errorf("screenshot: %w", err)
	}
	s.sys.Settle(delay)
	img, err := s.app.Client.GetImage(xserver.Root)
	if err != nil {
		return nil, fmt.Errorf("delayed screenshot: %w: %v", ErrBlocked, err)
	}
	return img, nil
}

// Recorder is an audio/video/desktop recorder (Audacity, recordMyDesktop,
// Cheese-like): on a user click it opens a device or captures the
// screen repeatedly.
type Recorder struct {
	sys    *core.System
	app    *core.App
	device string // device node to record from; "" means screen
}

// NewRecorder launches a recorder. device selects the input node, or ""
// for a desktop (screen) recorder.
func NewRecorder(sys *core.System, name, device string) (*Recorder, error) {
	app, err := sys.Launch(name)
	if err != nil {
		return nil, fmt.Errorf("recorder: %w", err)
	}
	return &Recorder{sys: sys, app: app, device: device}, nil
}

// App exposes the underlying harness handle.
func (r *Recorder) App() *core.App { return r.app }

// Record simulates the user clicking record and the tool opening its
// input once. Long recordings keep the device open, so a single
// mediated open is the access-control-relevant event.
func (r *Recorder) Record() error {
	if err := r.app.Click(); err != nil {
		return fmt.Errorf("recorder: %w", err)
	}
	r.sys.Settle(120 * time.Millisecond)
	if r.device == "" {
		if _, err := r.app.Client.GetImage(xserver.Root); err != nil {
			return fmt.Errorf("recorder screen: %w: %v", ErrBlocked, err)
		}
		return nil
	}
	h, err := r.app.OpenDevice(r.device)
	if err != nil {
		return fmt.Errorf("recorder %s: %w: %v", r.device, ErrBlocked, err)
	}
	return h.Close()
}

// Editor is a text/media editor or office application used by the
// clipboard assessment: it copies and pastes through the full ICCCM
// protocol in response to user keystrokes.
type Editor struct {
	sys *core.System
	app *core.App
}

// NewEditor launches an editor.
func NewEditor(sys *core.System, name string) (*Editor, error) {
	app, err := sys.Launch(name)
	if err != nil {
		return nil, fmt.Errorf("editor: %w", err)
	}
	return &Editor{sys: sys, app: app}, nil
}

// App exposes the underlying harness handle.
func (e *Editor) App() *core.App { return e.app }

// Copy simulates ctrl+c: the editor asserts clipboard ownership holding
// the given data (served later on demand).
func (e *Editor) Copy(data []byte) error {
	if err := e.app.Type("ctrl+c"); err != nil {
		return fmt.Errorf("editor copy: %w", err)
	}
	e.sys.Settle(30 * time.Millisecond)
	if err := e.app.Client.SetSelection("CLIPBOARD", e.app.Win); err != nil {
		return fmt.Errorf("editor copy: %w: %v", ErrBlocked, err)
	}
	// Stash the data in a window property so ServePaste can find it.
	if err := e.app.Client.ChangeProperty(e.app.Win, "_COPY_BUFFER", data); err != nil {
		return fmt.Errorf("editor copy: %w", err)
	}
	return nil
}

// Paste simulates ctrl+v in this editor against the current clipboard
// owner, running the target half of the protocol; the owner must answer
// via ServePaste. Returns the pasted bytes.
func (e *Editor) Paste(owner *Editor) ([]byte, error) {
	if err := e.app.Type("ctrl+v"); err != nil {
		return nil, fmt.Errorf("editor paste: %w", err)
	}
	e.sys.Settle(30 * time.Millisecond)
	if err := e.app.Client.ConvertSelection("CLIPBOARD", "UTF8_STRING", "XSEL_DATA", e.app.Win); err != nil {
		return nil, fmt.Errorf("editor paste: %w: %v", ErrBlocked, err)
	}
	if err := owner.ServePaste(); err != nil {
		return nil, fmt.Errorf("editor paste: %w", err)
	}
	// Consume the SelectionNotify and fetch the property.
	for {
		ev, ok := e.app.Client.NextEvent()
		if !ok {
			return nil, fmt.Errorf("editor paste: no SelectionNotify")
		}
		if ev.Type != xserver.SelectionNotify {
			continue
		}
		if ev.Property == "" {
			return nil, fmt.Errorf("editor paste: empty selection")
		}
		data, err := e.app.Client.GetProperty(e.app.Win, ev.Property)
		if err != nil {
			return nil, fmt.Errorf("editor paste: %w", err)
		}
		if err := e.app.Client.DeleteProperty(e.app.Win, ev.Property); err != nil {
			return nil, fmt.Errorf("editor paste: %w", err)
		}
		return data, nil
	}
}

// ServePaste runs the owner half of the protocol: answer the pending
// SelectionRequest with the stashed copy buffer.
func (e *Editor) ServePaste() error {
	for {
		ev, ok := e.app.Client.NextEvent()
		if !ok {
			return fmt.Errorf("editor serve: no SelectionRequest")
		}
		if ev.Type != xserver.SelectionRequest {
			continue
		}
		data, err := e.app.Client.GetProperty(e.app.Win, "_COPY_BUFFER")
		if err != nil {
			return fmt.Errorf("editor serve: %w", err)
		}
		if err := e.app.Client.ChangeProperty(ev.Requestor, ev.Property, data); err != nil {
			return fmt.Errorf("editor serve: %w", err)
		}
		notify := xserver.Event{
			Type:      xserver.SelectionNotify,
			Selection: ev.Selection,
			Target:    ev.Target,
			Property:  ev.Property,
		}
		if err := e.app.Client.SendEvent(ev.Requestor, notify); err != nil {
			return fmt.Errorf("editor serve: %w", err)
		}
		return nil
	}
}
