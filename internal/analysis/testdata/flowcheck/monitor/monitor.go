// Package monitor is the flowcheck fixture's decision core: grant
// gating (rule A) and stamp minting (rule B), with positive, negative,
// and suppressed variants of each.
package monitor

import (
	"time"

	"flowfix/clock"
	"flowfix/timeutil"
)

// Verdict is an access decision.
type Verdict int

// The verdict domain.
const (
	VerdictDeny Verdict = iota
	VerdictGrant
)

// Monitor owns the stamp store and the decision path.
type Monitor struct {
	clk       clock.Clock
	threshold time.Duration
	boot      time.Time
	force     bool
	stamps    map[int]time.Time
	queue     pendingStamp
}

// pendingStamp buffers a stamp between mint and apply; its Time field
// carries taint through the struct.
type pendingStamp struct {
	PID  int
	Time time.Time
}

// InteractionStamp is the stamp store's read API: its result is stamp
// evidence by definition.
func (m *Monitor) InteractionStamp(pid int) (time.Time, bool) {
	t, ok := m.stamps[pid]
	return t, ok
}

// SetInteractionStamp is the stamp store's write API: rule B checks
// its call sites.
func (m *Monitor) SetInteractionStamp(pid int, t time.Time) {
	m.stamps[pid] = t
}

// DecideGood gates the grant on a stamp-derived freshness comparison:
// the canonical shape, no findings.
func (m *Monitor) DecideGood(pid int, opTime time.Time) Verdict {
	stamp, ok := m.InteractionStamp(pid)
	if !ok {
		return VerdictDeny
	}
	if opTime.Sub(stamp) < m.threshold {
		return VerdictGrant
	}
	return VerdictDeny
}

// DecideUntaintedGuard compares against the boot time instead of the
// stamp store: the freshness check exists but proves nothing about
// user input.
func (m *Monitor) DecideUntaintedGuard(pid int, opTime time.Time) Verdict {
	if opTime.Sub(m.boot) < m.threshold {
		return VerdictGrant // want "not derived from the interaction-stamp store"
	}
	return VerdictDeny
}

// DecideUngated issues a grant on a branch with no freshness guard at
// all, in a function that does check freshness elsewhere.
func (m *Monitor) DecideUngated(pid int, opTime time.Time) Verdict {
	if m.force {
		return VerdictGrant // want "without a governing freshness comparison"
	}
	stamp, ok := m.InteractionStamp(pid)
	if ok && opTime.Sub(stamp) < m.threshold {
		return VerdictGrant
	}
	return VerdictDeny
}

// DecideSwitch mirrors the real monitor's tagless-switch shape.
func (m *Monitor) DecideSwitch(pid int, opTime time.Time) Verdict {
	stamp, ok := m.InteractionStamp(pid)
	switch {
	case !ok:
		return VerdictDeny
	case opTime.Sub(stamp) < m.threshold:
		return VerdictGrant
	case m.force:
		return VerdictGrant // want "without a governing freshness comparison"
	}
	return VerdictDeny
}

// DecideSuppressed carries the same defect with a reasoned allow.
func (m *Monitor) DecideSuppressed(pid int, opTime time.Time) Verdict {
	if m.force {
		//overhaul:allow flowcheck benchmark mode pins the verdict to measure overhead
		return VerdictGrant
	}
	stamp, ok := m.InteractionStamp(pid)
	if ok && opTime.Sub(stamp) < m.threshold {
		return VerdictGrant
	}
	return VerdictDeny
}

// Tally enumerates the verdict domain without issuing anything; the
// Duration comparison makes it a freshness-checking function, but the
// slice literal must not count as issuance.
func (m *Monitor) Tally(ages []time.Duration) map[Verdict]int {
	out := make(map[Verdict]int)
	for _, age := range ages {
		for _, v := range []Verdict{VerdictGrant, VerdictDeny} {
			if age < m.threshold {
				out[v]++
			}
		}
	}
	return out
}

// MintGood stamps from the hardware clock directly.
func (m *Monitor) MintGood(pid int) {
	m.SetInteractionStamp(pid, m.clk.Now())
}

// MintViaHelper stamps through the cross-package helper: the clock
// taint arrives via timeutil.FromClock's result summary fact.
func (m *Monitor) MintViaHelper(pid int) {
	m.SetInteractionStamp(pid, timeutil.FromClock(m.clk))
}

// MintViaField routes the clock reading through a struct field.
func (m *Monitor) MintViaField(pid int) {
	m.queue = pendingStamp{PID: pid, Time: m.clk.Now()}
	m.SetInteractionStamp(m.queue.PID, m.queue.Time)
}

// Adopt forwards a caller-supplied stamp: parameter passthrough is
// exempt, the caller's own call site is where the value is checked.
func (m *Monitor) Adopt(pid int, t time.Time) {
	m.SetInteractionStamp(pid, t)
}

// MintForged fabricates the stamp.
func (m *Monitor) MintForged(pid int) {
	m.SetInteractionStamp(pid, time.Unix(0, 42)) // want "not derived from the hardware clock"
}

// MintForgedHelper launders the fabrication through a helper, which
// the cross-package summary still sees through.
func (m *Monitor) MintForgedHelper(pid int) {
	m.SetInteractionStamp(pid, timeutil.Forged()) // want "not derived from the hardware clock"
}

// MintSuppressed is the forged mint with a reasoned allow.
func (m *Monitor) MintSuppressed(pid int) {
	//overhaul:allow flowcheck replay tooling reconstructs stamps from a recorded trace
	m.SetInteractionStamp(pid, time.Unix(0, 99))
}
