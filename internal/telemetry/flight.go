package telemetry

import (
	"bytes"
	"encoding/json"
	"time"
)

// FlightEvent is one entry in the flight-recorder ring: a terse record
// of something the enforcement stack did or observed. Kind is a short
// taxonomy tag ("denial", "degradation", "fault", "decision",
// "violation", ...); Detail is human-readable.
type FlightEvent struct {
	Seq       uint64    `json:"seq"`
	Time      time.Time `json:"time"`
	Subsystem string    `json:"subsystem"`
	Kind      string    `json:"kind"`
	Detail    string    `json:"detail"`
	Trace     TraceID   `json:"trace,omitempty"`
	Span      SpanID    `json:"span,omitempty"`
}

// FlightDump is a snapshot of the ring taken the moment something went
// wrong. Events are oldest-first; the last events are therefore the
// ones that explain the trip.
type FlightDump struct {
	Seq    uint64        `json:"seq"`
	Time   time.Time     `json:"time"`
	Reason string        `json:"reason"`
	Events []FlightEvent `json:"events"`
}

// RecordEvent appends an event to the flight ring. ctx may be zero.
func (r *Recorder) RecordEvent(ctx SpanContext, subsystem, kind, detail string) {
	if r == nil {
		return
	}
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recordEventLocked(FlightEvent{
		Time:      now,
		Subsystem: subsystem,
		Kind:      kind,
		Detail:    detail,
		Trace:     ctx.Trace,
		Span:      ctx.Span,
	})
}

// recordEventLocked stamps the sequence number and pushes ev into the
// ring, evicting the oldest entry when full. Requires r.mu held.
func (r *Recorder) recordEventLocked(ev FlightEvent) {
	r.flightSeq++
	ev.Seq = r.flightSeq
	if r.flight == nil {
		r.flight = make([]FlightEvent, r.flightCap)
	}
	if r.flightLen < r.flightCap {
		r.flight[(r.flightHead+r.flightLen)%r.flightCap] = ev
		r.flightLen++
		return
	}
	r.flight[r.flightHead] = ev
	r.flightHead = (r.flightHead + 1) % r.flightCap
}

// TripFlight records a trip event and snapshots the ring into a dump.
// Call it when a denial, a degradation, or an invariant violation
// fires; the dump's final events then explain what led up to it.
func (r *Recorder) TripFlight(ctx SpanContext, subsystem, reason string) {
	if r == nil {
		return
	}
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recordEventLocked(FlightEvent{
		Time:      now,
		Subsystem: subsystem,
		Kind:      "trip",
		Detail:    reason,
		Trace:     ctx.Trace,
		Span:      ctx.Span,
	})
	events := make([]FlightEvent, 0, r.flightLen)
	for i := 0; i < r.flightLen; i++ {
		events = append(events, r.flight[(r.flightHead+i)%r.flightCap])
	}
	d := FlightDump{
		Seq:    r.flightSeq,
		Time:   now,
		Reason: reason,
		Events: events,
	}
	if len(r.dumps) >= r.dumpCap {
		copy(r.dumps, r.dumps[1:])
		r.dumps[len(r.dumps)-1] = d
		r.dumpsDropped++
	} else {
		r.dumps = append(r.dumps, d)
	}
}

// FlightEvents returns the current ring contents, oldest first.
func (r *Recorder) FlightEvents() []FlightEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FlightEvent, 0, r.flightLen)
	for i := 0; i < r.flightLen; i++ {
		out = append(out, r.flight[(r.flightHead+i)%r.flightCap])
	}
	return out
}

// FlightDumps returns retained dumps, oldest first.
func (r *Recorder) FlightDumps() []FlightDump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FlightDump, len(r.dumps))
	copy(out, r.dumps)
	return out
}

// LastFlightDump returns the most recent dump, if any.
func (r *Recorder) LastFlightDump() (FlightDump, bool) {
	if r == nil {
		return FlightDump{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.dumps) == 0 {
		return FlightDump{}, false
	}
	return r.dumps[len(r.dumps)-1], true
}

// JSONL renders the dump as one JSON object per line: a header line
// (seq, time, reason) followed by one line per event, oldest first.
func (d FlightDump) JSONL() ([]byte, error) {
	var buf bytes.Buffer
	hdr := struct {
		Seq    uint64    `json:"seq"`
		Time   time.Time `json:"time"`
		Reason string    `json:"reason"`
		Events int       `json:"events"`
	}{d.Seq, d.Time, d.Reason, len(d.Events)}
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(hdr); err != nil {
		return nil, err
	}
	for _, ev := range d.Events {
		if err := enc.Encode(ev); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}
