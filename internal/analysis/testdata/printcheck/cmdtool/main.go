// Package main sits outside internal/: commands own the terminal and
// may print.
package main

import "fmt"

func main() {
	fmt.Println("commands may print")
}
