// Package core assembles the complete Overhaul system — the paper's
// primary contribution.
//
// It wires together the simulated substrates exactly as §III–§IV
// describe: a kernel with the permission monitor and device mediation, a
// display server with the trusted input/output paths, a netlink channel
// between them that the kernel authenticates by introspecting the X
// server process, and the trusted devfs helper that keeps the sensitive
// device mapping current. The result is a System through which
// simulated applications, users, and malware interact; every Overhaul
// enforcement decision flows through the same seams as in the paper's
// prototype.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/devfs"
	"overhaul/internal/faultinject"
	"overhaul/internal/fs"
	"overhaul/internal/kernel"
	"overhaul/internal/monitor"
	"overhaul/internal/netlink"
	"overhaul/internal/probe"
	"overhaul/internal/telemetry"
	"overhaul/internal/xserver"
)

// Well-known filesystem paths for the trusted binaries. The netlink
// authentication procedure checks connecting peers against these.
const (
	XServerPath     = "/usr/bin/Xorg"
	DevfsHelperPath = "/usr/sbin/overhaul-devd"
)

// netlink message vocabulary (the wire protocol between the display
// server and the kernel permission monitor).
type (
	// interactionMsg is N_{A,t}. Ctx carries the originating input
	// span's IDs across the channel exactly as the interaction
	// timestamp does, so the kernel-side trace links to the X-side one.
	interactionMsg struct {
		PID  int
		Time time.Time
		Ctx  telemetry.SpanContext
	}
	// interactionItem is one coalesced notification inside an
	// interactionBatchMsg; fields as in interactionMsg.
	interactionItem struct {
		PID  int
		Time time.Time
		Ctx  telemetry.SpanContext
	}
	// interactionBatchMsg carries several coalesced N_{A,t} in one
	// netlink message (batched-notify mode, Options.NotifyBatch). Items
	// hold at most one entry per pid, newest-wins.
	interactionBatchMsg struct {
		Items []interactionItem
	}
	// queryMsg is Q_{A,t}; Ctx as in interactionMsg.
	queryMsg struct {
		PID  int
		Op   monitor.Op
		Time time.Time
		Ctx  telemetry.SpanContext
	}
	// queryReply is R_{A,t}.
	queryReply struct {
		Verdict monitor.Verdict
	}
	// alertMsg is V_{A,op}, kernel → display server.
	alertMsg monitor.AlertRequest
)

// alertMsgPool recycles the *alertMsg boxes the alert path sends over
// the netlink channel. Passing an alertMsg by value through the `any`
// message parameter boxes it — one heap allocation per granted
// alert-set operation, which was the last allocation on the
// instrumented decision path. The hub is fully synchronous (Call and
// CallUser invoke handlers inline, including the duplicate-delivery
// fault), so the box is dead as soon as callUser returns and can go
// straight back to the pool.
var alertMsgPool = sync.Pool{New: func() any { return new(alertMsg) }}

// ErrUnknownMessage is returned by netlink handlers for unexpected
// payloads.
var ErrUnknownMessage = errors.New("core: unknown netlink message")

// Options configures the assembled system.
type Options struct {
	// Clock supplies time. Nil selects a fresh simulated clock.
	Clock clock.Clock
	// Threshold is δ. Zero selects monitor.DefaultThreshold (2 s).
	Threshold time.Duration
	// Enforce selects enforcement (true) or observe-only mode (false,
	// the unprotected baseline machine of §V-D).
	Enforce bool
	// ForceGrant is the Table I benchmark mode: every decision grants
	// but the whole decision path executes.
	ForceGrant bool
	// VisibilityThreshold gates interaction notifications in the
	// display server. Zero selects the server default (1 s).
	VisibilityThreshold time.Duration
	// AlertSecret is the user's visual shared secret.
	AlertSecret string
	// ShmWait overrides the shared-memory wait-list duration. Zero
	// selects ipc.DefaultShmWait (500 ms).
	ShmWait time.Duration
	// DisablePtraceGuard turns the ptrace permission guard off.
	DisablePtraceGuard bool
	// DeviceInitRounds forwards the simulated per-open driver cost to
	// the kernel (benchmarks only; zero disables).
	DeviceInitRounds int
	// WireWork forwards the simulated X transport cost to the display
	// server (benchmarks only; zero disables).
	WireWork int
	// StorageRounds forwards the simulated per-create storage cost to
	// the kernel (benchmarks only; zero disables).
	StorageRounds int
	// DisableXTest rejects XTest injection outright (the stricter
	// deployment variant §IV-A contemplates).
	DisableXTest bool
	// DisableP1 ablates fork-time stamp inheritance.
	DisableP1 bool
	// DisableP2 ablates IPC stamp propagation.
	DisableP2 bool
	// FaultHook, when non-nil, is threaded through every trust seam:
	// the netlink hub, the kernel, the devfs helper and the display
	// server all consult it at their named fault points. Chaos
	// campaigns pass a seeded faultinject.Injector hook here.
	FaultHook faultinject.Hook
	// ChannelRetries bounds retransmissions of a failed netlink call
	// before the channel is declared down. Zero selects
	// DefaultChannelRetries; negative disables retries.
	ChannelRetries int
	// ChannelBackoff is the first retry's backoff (doubling per
	// attempt), realised on the simulated clock. Zero selects
	// DefaultChannelBackoff.
	ChannelBackoff time.Duration
	// NotifyBatch, when > 1, coalesces interaction notifications into
	// batched netlink messages of up to NotifyBatch items (one per pid,
	// newest-wins — the same rule the monitor applies on receipt, so
	// coalescing never changes the converged stamp). A batch flushes
	// when full, before every permission query that crosses the
	// channel, and on System.FlushNotifications. Buffered items are not
	// yet visible to kernel-side device mediation, so callers relying
	// on an immediate stamp (outside the query path) must flush. Values
	// <= 1 disable batching: every notification is its own call.
	NotifyBatch int
	// AuditCapacity forwards the monitor's audit-ring size. Zero
	// selects the monitor default (1024). Chaos campaigns raise it so
	// the invariant checker never loses records to ring eviction.
	AuditCapacity int
	// Telemetry, when non-nil, instruments every enforcement subsystem
	// (metrics, decision-path spans, flight recorder). Nil disables
	// instrumentation at zero cost.
	Telemetry *telemetry.Recorder
	// Probes, when non-nil, arms the probe attach points across every
	// subsystem (kernel, monitor, xserver, netlink). Nil (the default)
	// leaves the system uninstrumented: each hook then costs a single
	// nil check.
	Probes *probe.Registry
}

// System is a booted Overhaul machine.
type System struct {
	Clock  clock.Clock
	FS     *fs.FS
	Kernel *kernel.Kernel
	X      *xserver.Server
	Helper *devfs.Helper

	hub         *netlink.Hub
	ch          *channel
	xConn       *netlink.Conn
	xProc       *kernel.Process
	userHandler netlink.Handler
	batcher     *notifyBatcher // nil unless Options.NotifyBatch > 1
	enforce     bool
	tel         *telemetry.Recorder
}

// xPolicy implements xserver.Policy by speaking the netlink protocol —
// the display server never touches kernel state directly. All calls go
// through the retrying channel wrapper, so transient faults are
// absorbed and persistent ones degrade the whole system closed.
type xPolicy struct {
	ch    *channel
	tel   *telemetry.Recorder // nil-safe; shared with the whole system
	batch *notifyBatcher      // nil unless batched-notify mode is on
}

var _ xserver.Policy = (*xPolicy)(nil)

// NotifyInteraction implements xserver.Policy. The netlink call gets
// its own span nested under the display server's notify span, and the
// span context rides the wire inside the message so the kernel-side
// monitor span links back here.
func (p *xPolicy) NotifyInteraction(ctx telemetry.SpanContext, pid int, t time.Time) error {
	if p.batch != nil {
		// Batched-notify mode: buffer (coalescing per pid); the wire
		// span is minted by the batch flush instead. The input span
		// still rides inside the item so the kernel-side trace links.
		return p.batch.buffer(ctx, pid, t)
	}
	span := p.tel.StartSpan(ctx, "netlink", "notify_call")
	defer span.End()
	_, err := p.ch.call(interactionMsg{PID: pid, Time: t, Ctx: span.Context()})
	if err != nil && p.tel.Enabled() {
		span.Annotate("error", err.Error())
	}
	return err
}

// Query implements xserver.Policy.
func (p *xPolicy) Query(ctx telemetry.SpanContext, pid int, op monitor.Op, t time.Time) (monitor.Verdict, error) {
	if p.batch != nil {
		// A query must never outrun a buffered notification: flush
		// first so the monitor decides against the freshest stamps. A
		// flush failure is left to the channel's own retry/degradation
		// policy — the query below then meets a degraded (deny-all)
		// monitor, which is the fail-closed outcome we want.
		_ = p.batch.flush()
	}
	span := p.tel.StartSpan(ctx, "netlink", "query_call")
	defer span.End()
	reply, err := p.ch.call(queryMsg{PID: pid, Op: op, Time: t, Ctx: span.Context()})
	if err != nil {
		if p.tel.Enabled() {
			span.Annotate("error", err.Error())
		}
		return monitor.VerdictDeny, err
	}
	r, ok := reply.(queryReply)
	if !ok {
		return monitor.VerdictDeny, fmt.Errorf("query reply %T: %w", reply, ErrUnknownMessage)
	}
	return r.Verdict, nil
}

// Boot assembles and starts an Overhaul system.
func Boot(opts Options) (*System, error) {
	clk := opts.Clock
	if clk == nil {
		clk = clock.NewSimulated()
	}
	fsys := fs.New(clk)

	// Install the trusted binaries so netlink peer authentication has
	// something to introspect.
	if err := fsys.MkdirAll("/usr/bin", 0o755, fs.Root); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := fsys.MkdirAll("/usr/sbin", 0o755, fs.Root); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	for _, p := range []string{XServerPath, DevfsHelperPath} {
		if err := fsys.WriteFile(p, []byte("ELF\x7f"), 0o755, fs.Root); err != nil {
			return nil, fmt.Errorf("core: install %s: %w", p, err)
		}
	}

	k, err := kernel.New(clk, fsys, kernel.Config{
		Monitor: monitor.Config{
			Threshold:     opts.Threshold,
			Enforce:       opts.Enforce,
			ForceGrant:    opts.ForceGrant,
			AuditCapacity: opts.AuditCapacity,
			Telemetry:     opts.Telemetry,
			Probes:        opts.Probes,
		},
		DisablePtraceGuard: opts.DisablePtraceGuard,
		DeviceInitRounds:   opts.DeviceInitRounds,
		StorageRounds:      opts.StorageRounds,
		DisableP1:          opts.DisableP1,
		DisableP2:          opts.DisableP2,
		FaultHook:          opts.FaultHook,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opts.ShmWait > 0 {
		k.SetShmWait(opts.ShmWait)
	}

	// The display server runs as a root-owned userspace process.
	xProc, err := k.Spawn(kernel.SpawnSpec{Name: "Xorg", Exe: XServerPath, Cred: fs.Root})
	if err != nil {
		return nil, fmt.Errorf("core: spawn X: %w", err)
	}

	// Netlink hub on the kernel side: peers must introspect as the X
	// server binary.
	hub, err := netlink.NewHub(netlink.AuthenticatorFunc(func(pid int) error {
		return k.AuthenticateTrustedBinary(pid, XServerPath)
	}))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	hub.SetFaultHook(opts.FaultHook)
	hub.SetTelemetry(opts.Telemetry)
	hub.SetProbes(opts.Probes)
	hub.SetKernelHandler(func(msg any) (any, error) {
		switch m := msg.(type) {
		case interactionMsg:
			return nil, k.Monitor().NotifyCtx(m.Ctx, m.PID, m.Time)
		case interactionBatchMsg:
			// Deliver every item even when one fails (unknown pids may
			// have exited between buffering and delivery); the first
			// error reports, matching single-notify semantics.
			var firstErr error
			for _, it := range m.Items {
				if err := k.Monitor().NotifyCtx(it.Ctx, it.PID, it.Time); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			return nil, firstErr
		case queryMsg:
			return queryReply{Verdict: k.Monitor().DecideCtx(m.Ctx, m.PID, m.Op, m.Time)}, nil
		default:
			return nil, fmt.Errorf("%w: %T", ErrUnknownMessage, msg)
		}
	})

	sys := &System{
		Clock:   clk,
		FS:      fsys,
		Kernel:  k,
		Helper:  nil,
		hub:     hub,
		xProc:   xProc,
		enforce: opts.Enforce,
		tel:     opts.Telemetry,
	}

	// The channel wrapper owns the retry/degradation policy for both
	// directions. When it declares the channel dead the monitor flips
	// into fail-closed degraded mode: with no working path to the
	// trusted input source, every sensitive access must deny.
	retries := opts.ChannelRetries
	switch {
	case retries == 0:
		retries = DefaultChannelRetries
	case retries < 0:
		retries = 0
	}
	backoff := opts.ChannelBackoff
	if backoff <= 0 {
		backoff = DefaultChannelBackoff
	}
	sys.ch = &channel{
		hub:     hub,
		clk:     clk,
		pid:     xProc.PID(),
		retries: retries,
		backoff: backoff,
		onDown: func(reason string) {
			k.Monitor().SetDegraded(reason)
		},
	}

	// Connect the X server to the kernel. Its user handler receives
	// alert requests.
	var x *xserver.Server
	sys.userHandler = func(msg any) (any, error) {
		switch m := msg.(type) {
		case *alertMsg:
			// ShowAlert copies the request; the box stays owned by the
			// sender, which pools it after the synchronous call returns.
			x.ShowAlert(monitor.AlertRequest(*m))
			return nil, nil
		case alertMsg:
			x.ShowAlert(monitor.AlertRequest(m))
			return nil, nil
		default:
			return nil, fmt.Errorf("%w: %T", ErrUnknownMessage, msg)
		}
	}
	conn, err := hub.Connect(xProc.PID(), sys.userHandler)
	if err != nil {
		return nil, fmt.Errorf("core: connect X to netlink: %w", err)
	}
	sys.xConn = conn
	sys.ch.reset(conn)

	var policy xserver.Policy
	if opts.Enforce || opts.ForceGrant {
		xp := &xPolicy{ch: sys.ch, tel: opts.Telemetry}
		if opts.NotifyBatch > 1 {
			sys.batcher = newNotifyBatcher(sys.ch, opts.NotifyBatch, opts.Telemetry)
			xp.batch = sys.batcher
		}
		policy = xp
	}
	x, err = xserver.NewServer(clk, policy, xserver.Config{
		VisibilityThreshold: opts.VisibilityThreshold,
		AlertSecret:         opts.AlertSecret,
		WireWork:            opts.WireWork,
		DisableXTest:        opts.DisableXTest,
		FaultHook:           opts.FaultHook,
		Telemetry:           opts.Telemetry,
		Probes:              opts.Probes,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sys.X = x

	// Kernel-side alerts route to the display server over the channel.
	tel := opts.Telemetry
	k.Monitor().SetAlertFunc(func(req monitor.AlertRequest) {
		// Failures only suppress the alert, never the already-granted
		// operation — but exhausting the channel's retries flips the
		// system into degraded mode, so *future* decisions deny.
		span := tel.StartSpan(req.Ctx, "netlink", "alert_call")
		defer span.End()
		req.Ctx = span.Context()
		m := alertMsgPool.Get().(*alertMsg)
		*m = alertMsg(req)
		_, _ = sys.ch.callUser(m)
		*m = alertMsg{}
		alertMsgPool.Put(m)
	})

	// Start the trusted devfs helper and attach the standard sensors.
	helper, err := devfs.NewHelper(fsys, k)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	helper.SetFaultHook(opts.FaultHook)
	sys.Helper = helper

	return sys, nil
}

// BootDefault boots an enforcing system with a simulated clock and the
// paper's default parameters, with a microphone and camera attached.
// It returns the system and the device paths.
func BootDefault() (*System, string, string, error) {
	sys, err := Boot(Options{Enforce: true, AlertSecret: "tabby-cat"})
	if err != nil {
		return nil, "", "", err
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		return nil, "", "", fmt.Errorf("core: attach mic: %w", err)
	}
	cam, err := sys.Helper.Attach(devfs.ClassCamera)
	if err != nil {
		return nil, "", "", fmt.Errorf("core: attach cam: %w", err)
	}
	return sys, mic, cam, nil
}

// Enforcing reports whether the system blocks (true) or only observes.
func (s *System) Enforcing() bool { return s.enforce }

// Telemetry returns the system's telemetry recorder (nil when booted
// without one; every recorder method is nil-safe).
func (s *System) Telemetry() *telemetry.Recorder { return s.tel }

// DisconnectX tears down the netlink connection between the display
// server and the kernel (failure injection: the system must fail
// closed — no notifications, no grants). The channel itself discovers
// the loss on its next call and degrades the monitor.
func (s *System) DisconnectX() error {
	return s.xConn.Close()
}

// ReconnectX re-establishes the netlink connection after an outage and
// lifts the degraded mode on both sides: the monitor resumes normal
// temporal-proximity decisions and the display server clears its
// protection-degraded banner state.
func (s *System) ReconnectX() error {
	// An outage declared after exhausted retries (rather than an
	// explicit DisconnectX) leaves the stale connection registered on
	// the hub; tear it down before re-establishing.
	if s.xConn != nil && s.hub.Connected(s.xProc.PID()) {
		_ = s.xConn.Close()
	}
	conn, err := s.hub.Connect(s.xProc.PID(), s.userHandler)
	if err != nil {
		return fmt.Errorf("core: reconnect X: %w", err)
	}
	s.xConn = conn
	s.ch.reset(conn)
	s.Kernel.Monitor().ClearDegraded()
	s.X.ClearDegraded()
	return nil
}

// FlushNotifications delivers any interaction notifications buffered by
// batched-notify mode (Options.NotifyBatch). A no-op when batching is
// off or nothing is pending.
func (s *System) FlushNotifications() error {
	if s.batcher == nil {
		return nil
	}
	return s.batcher.flush()
}

// ChannelDown reports whether the kernel↔X channel is currently
// declared dead.
func (s *System) ChannelDown() bool {
	_, down := s.ch.state()
	return down
}

// AttachDevice hotplugs a sensitive device through the trusted helper
// and returns its /dev path.
func (s *System) AttachDevice(class devfs.Class) (string, error) {
	return s.Helper.Attach(class)
}

// Audit returns a copy of the permission monitor's decision log.
func (s *System) Audit() []monitor.Decision {
	return s.Kernel.Monitor().Audit()
}

// ActiveAlerts returns the trusted-output alerts currently on screen.
func (s *System) ActiveAlerts() []xserver.Alert {
	return s.X.ActiveAlerts()
}

// XProcess returns the display server's kernel process.
func (s *System) XProcess() *kernel.Process { return s.xProc }

// Hub exposes the netlink hub (for diagnostics and adversarial tests).
func (s *System) Hub() *netlink.Hub { return s.hub }

// SimClock returns the system clock as a *clock.Simulated when it is
// one, for tests that drive time manually.
func (s *System) SimClock() (*clock.Simulated, bool) {
	c, ok := s.Clock.(*clock.Simulated)
	return c, ok
}
