package auditstore_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"overhaul/internal/auditstore"
	"overhaul/internal/faultinject"
	"overhaul/internal/monitor"
)

// testBase anchors every test record's timestamps (no wall clock in
// tests: runs are reproducible by construction).
var testBase = time.Date(2016, 3, 1, 9, 0, 0, 0, time.UTC)

// mkRecord builds a deterministic record for index i (Seq left zero).
func mkRecord(i int) auditstore.Record {
	ops := [...]string{"open_device", "read_screen", "inject_input"}
	verdict, reason := "grant", "interaction 1s ago"
	if i%3 == 0 {
		verdict, reason = "deny", "no recent interaction"
	}
	return auditstore.Record{
		Time:    testBase.Add(time.Duration(i) * 50 * time.Millisecond),
		Session: uint64(i % 4),
		PID:     100 + i%7,
		Op:      ops[i%len(ops)],
		Verdict: verdict,
		Reason:  reason,
		Stamp:   testBase.Add(-2 * time.Second),
	}
}

// decisionStream builds the first n decisions of a deterministic
// monitor stream (what a Tail consumes).
func decisionStream(n int) []monitor.Decision {
	out := make([]monitor.Decision, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, mkRecord(i).Decision())
	}
	return out
}

// fillStore appends records 0..n-1 and fails the test on any error.
func fillStore(t *testing.T, st auditstore.Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq, err := st.Append(mkRecord(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("append %d: seq = %d, want %d", i, seq, want)
		}
	}
}

// checkPrefix asserts the store holds exactly records 0..n-1 of the
// mkRecord stream, byte-identical under the segment encoding.
func checkPrefix(t *testing.T, st auditstore.Store, n int) {
	t.Helper()
	count, err := st.Count()
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
	for i := 0; i < n; i++ {
		got, ok, err := st.Get(uint64(i + 1))
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i+1, ok, err)
		}
		want := mkRecord(i)
		want.Seq = uint64(i + 1)
		gotLine, err := auditstore.EncodeRecord(got)
		if err != nil {
			t.Fatalf("encode got %d: %v", i+1, err)
		}
		wantLine, err := auditstore.EncodeRecord(want)
		if err != nil {
			t.Fatalf("encode want %d: %v", i+1, err)
		}
		if string(gotLine) != string(wantLine) {
			t.Fatalf("record %d diverged:\n got %s\nwant %s", i+1, gotLine, wantLine)
		}
	}
}

func TestMemStoreCRUD(t *testing.T) {
	m := auditstore.NewMemStore()
	fillStore(t, m, 50)
	checkPrefix(t, m, 50)

	if _, ok, err := m.Get(0); ok || err != nil {
		t.Fatalf("get 0: ok=%v err=%v, want miss", ok, err)
	}
	if _, ok, err := m.Get(51); ok || err != nil {
		t.Fatalf("get past end: ok=%v err=%v, want miss", ok, err)
	}
	if m.LastSeq() != 50 {
		t.Fatalf("LastSeq = %d, want 50", m.LastSeq())
	}

	// Explicit matching seq is accepted; a wrong one is rejected.
	r := mkRecord(50)
	r.Seq = 51
	if _, err := m.Append(r); err != nil {
		t.Fatalf("append explicit seq: %v", err)
	}
	r = mkRecord(51)
	r.Seq = 99
	if _, err := m.Append(r); !errors.Is(err, auditstore.ErrSeqMismatch) {
		t.Fatalf("append wrong seq: %v, want ErrSeqMismatch", err)
	}

	if err := m.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := m.Append(mkRecord(0)); !errors.Is(err, auditstore.ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if _, _, err := m.Get(1); !errors.Is(err, auditstore.ErrClosed) {
		t.Fatalf("get after close: %v, want ErrClosed", err)
	}
	if err := m.Scan(auditstore.Query{}, func(auditstore.Record) bool { return true }); !errors.Is(err, auditstore.ErrClosed) {
		t.Fatalf("scan after close: %v, want ErrClosed", err)
	}
	if err := m.Close(); !errors.Is(err, auditstore.ErrClosed) {
		t.Fatalf("double close: %v, want ErrClosed", err)
	}
}

func TestQueryFilters(t *testing.T) {
	m := auditstore.NewMemStore()
	fillStore(t, m, 60)

	scan := func(q auditstore.Query) []auditstore.Record {
		t.Helper()
		out, err := auditstore.ScanAll(m, q)
		if err != nil {
			t.Fatalf("scan %+v: %v", q, err)
		}
		return out
	}

	if got := scan(auditstore.Query{}); len(got) != 60 {
		t.Fatalf("zero query: %d records, want 60", len(got))
	}
	for _, r := range scan(auditstore.Query{PID: 103}) {
		if r.PID != 103 {
			t.Fatalf("pid filter leaked %+v", r)
		}
	}
	deny := scan(auditstore.Query{Verdict: "deny"})
	if len(deny) != 20 {
		t.Fatalf("deny count = %d, want 20", len(deny))
	}
	for _, r := range deny {
		if r.Verdict != "deny" {
			t.Fatalf("verdict filter leaked %+v", r)
		}
	}
	if got := scan(auditstore.Query{Verdict: "unknown"}); len(got) != 0 {
		t.Fatalf("unknown verdict matched %d records", len(got))
	}
	if got := scan(auditstore.Query{Reason: "recent"}); len(got) != 20 {
		t.Fatalf("reason substring = %d records, want 20", len(got))
	}

	// Since/Until bound on record time; records are 50ms apart.
	since := testBase.Add(1 * time.Second) // records 20..59
	until := testBase.Add(2 * time.Second) // records ..39
	if got := scan(auditstore.Query{Since: since}); len(got) != 40 {
		t.Fatalf("since = %d records, want 40", len(got))
	}
	if got := scan(auditstore.Query{Since: since, Until: until}); len(got) != 20 {
		t.Fatalf("since+until = %d records, want 20", len(got))
	}

	if got := scan(auditstore.Query{Session: 2}); len(got) != 15 {
		t.Fatalf("session = %d records, want 15", len(got))
	}

	got := scan(auditstore.Query{Limit: 7})
	if len(got) != 7 || got[0].Seq != 1 || got[6].Seq != 7 {
		t.Fatalf("limit: got %d records starting at %d", len(got), got[0].Seq)
	}

	// Combined posting-list paths stay consistent with a brute scan.
	want := 0
	for i := 0; i < 60; i++ {
		r := mkRecord(i)
		if r.PID == 100 && r.Verdict == "deny" {
			want++
		}
	}
	if got := scan(auditstore.Query{PID: 100, Verdict: "deny"}); len(got) != want {
		t.Fatalf("pid+verdict = %d records, want %d", len(got), want)
	}

	// Early stop: yield false ends the scan.
	seen := 0
	if err := m.Scan(auditstore.Query{}, func(auditstore.Record) bool {
		seen++
		return seen < 3
	}); err != nil {
		t.Fatalf("early-stop scan: %v", err)
	}
	if seen != 3 {
		t.Fatalf("early stop saw %d records, want 3", seen)
	}
}

func TestFileStoreAppendGetReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 16})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if rec := st.Recovery(); !rec.Clean || rec.Records != 0 {
		t.Fatalf("fresh open recovery = %+v, want clean empty", rec)
	}
	fillStore(t, st, 100)
	checkPrefix(t, st, 100)
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 16})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close() //overhaul:allow errdrop test cleanup
	rec := st2.Recovery()
	if !rec.Clean || rec.Truncated || rec.Records != 100 || rec.LastSeq != 100 {
		t.Fatalf("reopen recovery = %+v, want clean 100 records", rec)
	}
	checkPrefix(t, st2, 100)

	// The reopened store keeps appending where the stream left off.
	seq, err := st2.Append(mkRecord(100))
	if err != nil || seq != 101 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestFileStoreRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 8, CompactSealed: 3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fillStore(t, st, 100)
	sealed, active := st.SegmentCount()
	if sealed >= 3 || active != 1 {
		t.Fatalf("segments: sealed=%d active=%d, want compaction to keep sealed < 3", sealed, active)
	}
	checkPrefix(t, st, 100)
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(names) != sealed+active {
		t.Fatalf("directory has %d segments, store tracked %d", len(names), sealed+active)
	}

	st2, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 8, CompactSealed: 3})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close() //overhaul:allow errdrop test cleanup
	if rec := st2.Recovery(); !rec.Clean || rec.Records != 100 {
		t.Fatalf("reopen recovery = %+v, want clean 100 records", rec)
	}
	checkPrefix(t, st2, 100)
}

func TestFileStoreManualCompact(t *testing.T) {
	dir := t.TempDir()
	st, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 4, CompactSealed: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer st.Close() //overhaul:allow errdrop test cleanup
	fillStore(t, st, 40)
	sealed, _ := st.SegmentCount()
	if sealed < 9 {
		t.Fatalf("sealed = %d before manual compact, want >= 9 (auto compaction disabled)", sealed)
	}
	if err := st.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if sealed, _ = st.SegmentCount(); sealed != 1 {
		t.Fatalf("sealed = %d after compact, want 1", sealed)
	}
	checkPrefix(t, st, 40)
}

func TestFileStoreFailClosed(t *testing.T) {
	dir := t.TempDir()
	inj, err := faultinject.New(1, faultinject.Rule{
		Point: faultinject.PointStoreAppend, Kind: faultinject.KindCrash, After: 5, Count: 1,
	})
	if err != nil {
		t.Fatalf("injector: %v", err)
	}
	st, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 16, Hook: inj.Hook()})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	acked := 0
	var failErr error
	for i := 0; i < 10; i++ {
		if _, err := st.Append(mkRecord(i)); err != nil {
			failErr = err
			break
		}
		acked++
	}
	if failErr == nil || !errors.Is(failErr, auditstore.ErrStoreFailed) {
		t.Fatalf("append fault: %v, want ErrStoreFailed", failErr)
	}
	if acked != 5 {
		t.Fatalf("acked = %d, want 5", acked)
	}

	// Fail closed: reads fail too — a store that cannot vouch for its
	// tail must not answer as if it could.
	if _, _, err := st.Get(1); !errors.Is(err, auditstore.ErrStoreFailed) {
		t.Fatalf("get after failure: %v, want ErrStoreFailed", err)
	}
	if err := st.Scan(auditstore.Query{}, func(auditstore.Record) bool { return true }); !errors.Is(err, auditstore.ErrStoreFailed) {
		t.Fatalf("scan after failure: %v, want ErrStoreFailed", err)
	}
	if _, err := st.Count(); !errors.Is(err, auditstore.ErrStoreFailed) {
		t.Fatalf("count after failure: %v, want ErrStoreFailed", err)
	}
	if _, err := st.Append(mkRecord(acked)); !errors.Is(err, auditstore.ErrStoreFailed) {
		t.Fatalf("append after failure: %v, want ErrStoreFailed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close failed store: %v", err)
	}

	// Reopen recovers the acked prefix.
	st2, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 16})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close() //overhaul:allow errdrop test cleanup
	checkPrefix(t, st2, acked)
}

func TestFileStoreTornTailReported(t *testing.T) {
	dir := t.TempDir()
	st, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 8})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fillStore(t, st, 10)
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Corrupt the active segment with a torn half-frame, the way a
	// power cut mid-write would.
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("glob: %v (%d segments)", err, len(names))
	}
	last := names[len(names)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write([]byte("000000ffdeadbeef{\"seq\":torn")); err != nil {
		t.Fatalf("tear segment: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close segment: %v", err)
	}

	st2, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 8})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec := st2.Recovery()
	if rec.Clean || !rec.Truncated {
		t.Fatalf("recovery = %+v, want reported truncation", rec)
	}
	if rec.TruncatedFile != filepath.Base(last) || rec.TruncatedOffset == 0 {
		t.Fatalf("truncation point = %s:%d, want %s:>0", rec.TruncatedFile, rec.TruncatedOffset, filepath.Base(last))
	}
	if rec.Reason == "" || rec.DroppedBytes == 0 {
		t.Fatalf("recovery = %+v, want reason and dropped bytes", rec)
	}
	checkPrefix(t, st2, 10)
	if err := st2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Normalization means the next open is clean: the damage was
	// rewritten away, not left to be re-reported forever.
	st3, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 8})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer st3.Close() //overhaul:allow errdrop test cleanup
	if rec := st3.Recovery(); !rec.Clean {
		t.Fatalf("post-normalize recovery = %+v, want clean", rec)
	}
	checkPrefix(t, st3, 10)
}

func TestTailSyncAndRebind(t *testing.T) {
	dir := t.TempDir()
	st, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 8})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	tail, err := auditstore.NewTail(st, 3)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	dstream := decisionStream(12)
	if n, err := tail.Sync(dstream); err != nil || n != 12 {
		t.Fatalf("sync: n=%d err=%v, want 12", n, err)
	}
	if n, err := tail.Sync(dstream); err != nil || n != 0 {
		t.Fatalf("re-sync: n=%d err=%v, want 0 (idempotent)", n, err)
	}
	dstream = decisionStream(20)
	if n, err := tail.Sync(dstream); err != nil || n != 8 {
		t.Fatalf("grow sync: n=%d err=%v, want 8", n, err)
	}
	count, err := st.Count()
	if err != nil || count != 20 {
		t.Fatalf("count = %d err=%v, want 20", count, err)
	}
	got, err := auditstore.ScanAll(st, auditstore.Query{Session: 3})
	if err != nil || len(got) != 20 {
		t.Fatalf("session query = %d records err=%v, want 20", len(got), err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Rebind onto a reopened store resumes at the recovered count.
	st2, err := auditstore.Open(dir, auditstore.Options{SegmentRecords: 8})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close() //overhaul:allow errdrop test cleanup
	if err := tail.Rebind(st2); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if tail.Cursor() != 20 {
		t.Fatalf("cursor after reset = %d, want 20", tail.Cursor())
	}
	dstream = decisionStream(25)
	if n, err := tail.Sync(dstream); err != nil || n != 5 {
		t.Fatalf("post-reset sync: n=%d err=%v, want 5", n, err)
	}
}
