package analysis

import (
	"strings"
	"testing"
)

func TestApplyEdits(t *testing.T) {
	src := []byte("alpha beta gamma")
	out, err := applyEdits(src, []TextEdit{
		{Start: 6, End: 10, NewText: "BETA"},
		{Start: 0, End: 0, NewText: ">> "},
		{Start: 11, End: 16, NewText: ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out); got != ">> alpha BETA " {
		t.Errorf("applyEdits = %q", got)
	}
}

func TestApplyEditsRejectsBadRanges(t *testing.T) {
	src := []byte("0123456789")
	cases := [][]TextEdit{
		{{Start: -1, End: 2}},
		{{Start: 4, End: 2}},
		{{Start: 8, End: 11}},
		{{Start: 0, End: 5}, {Start: 3, End: 7}}, // overlap
	}
	for i, edits := range cases {
		if _, err := applyEdits(src, edits); err == nil {
			t.Errorf("case %d: applyEdits accepted invalid edits %v", i, edits)
		}
	}
}

func TestOverlapsInsertions(t *testing.T) {
	a := TextEdit{File: "f", Start: 5, End: 5, NewText: "x"}
	b := TextEdit{File: "f", Start: 5, End: 5, NewText: "y"}
	if !overlaps(a, b) {
		t.Error("two insertions at the same offset must collide (ambiguous order)")
	}
	c := TextEdit{File: "g", Start: 5, End: 5}
	if overlaps(a, c) {
		t.Error("edits in different files never overlap")
	}
}

func TestUnifiedDiff(t *testing.T) {
	if d := unifiedDiff("x.go", "same\n", "same\n"); d != "" {
		t.Errorf("identical content should produce no diff, got %q", d)
	}
	d := unifiedDiff("x.go", "a\nb\nc\n", "a\nB\nc\n")
	for _, want := range []string{"--- a/x.go", "+++ b/x.go", "-b", "+B"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
}

// FuzzApplyEdits drives the fix applier with arbitrary source and two
// arbitrary edits. Invariants: no panic; on success the output length
// matches the edit arithmetic and replacement text appears verbatim;
// invalid ranges are rejected, never clamped.
func FuzzApplyEdits(f *testing.F) {
	f.Add("package p\n\nfunc f() { g() }\n", 11, 11, "_ = ", 0, 7, "package")
	f.Add("x", 0, 1, "", 1, 1, "tail")
	f.Add("", 0, 0, "seed", 0, 0, "seed2")
	f.Fuzz(func(t *testing.T, src string, s1, e1 int, t1 string, s2, e2 int, t2 string) {
		edits := []TextEdit{
			{File: "f.go", Start: s1, End: e1, NewText: t1},
			{File: "f.go", Start: s2, End: e2, NewText: t2},
		}
		out, err := applyEdits([]byte(src), edits)
		if err != nil {
			return
		}
		wantLen := len(src) + len(t1) - (e1 - s1) + len(t2) - (e2 - s2)
		if len(out) != wantLen {
			t.Fatalf("output length %d, want %d (src %d)", len(out), wantLen, len(src))
		}
		for _, e := range edits {
			if e.Start < 0 || e.End < e.Start || e.End > len(src) {
				t.Fatalf("invalid range [%d,%d) accepted for %d-byte input", e.Start, e.End, len(src))
			}
		}
		if !strings.Contains(string(out), t1) || !strings.Contains(string(out), t2) {
			t.Fatalf("replacement text missing from output %q", out)
		}
	})
}
