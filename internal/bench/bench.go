// Package bench reproduces Table I of the paper: the performance
// overhead of Overhaul on each critical path, measured as baseline
// (unmodified kernel and X server) versus Overhaul (full decision path
// with the permission monitor in force-grant mode, exactly as the paper
// configures it so benchmarks exercise the entire grant path without
// user input).
//
// The absolute times differ from the paper's i7-930 testbed — the
// substrate is a simulator — but the comparison preserves the cost
// structure: device opens pay a simulated driver-initialisation cost,
// X requests pay a simulated wire cost, and shared-memory fast-path
// accesses are nearly free, so the *relative* overhead lands in the
// paper's low single digits with the same ordering.
package bench

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/core"
	"overhaul/internal/devfs"
	"overhaul/internal/fs"
	"overhaul/internal/ipc"
	"overhaul/internal/kernel"
	"overhaul/internal/monitor"
	"overhaul/internal/xserver"
)

// Row is one Table I line.
type Row struct {
	Name     string        `json:"name"`
	Ops      int           `json:"ops"`
	Baseline time.Duration `json:"baselineNanos"`
	Overhaul time.Duration `json:"overhaulNanos"`
	// medianRatio is the median of per-chunk overhaul/baseline time
	// ratios; it is robust against scheduler stalls that land in one
	// side of a single chunk on shared hardware.
	medianRatio float64
}

// OverheadPct returns the relative slowdown in percent, preferring the
// outlier-robust per-chunk median when available.
func (r Row) OverheadPct() float64 {
	if r.medianRatio > 0 {
		return (r.medianRatio - 1) * 100
	}
	if r.Baseline <= 0 {
		return 0
	}
	return (float64(r.Overhaul) - float64(r.Baseline)) / float64(r.Baseline) * 100
}

// PaperRow holds the published Table I numbers for side-by-side output.
type PaperRow struct {
	Name        string
	Baseline    string
	Overhaul    string
	OverheadPct float64
}

// PaperTableI returns the published measurements.
func PaperTableI() []PaperRow {
	return []PaperRow{
		{Name: "Device Access", Baseline: "45.20 s", Overhaul: "46.18 s", OverheadPct: 2.17},
		{Name: "Clipboard", Baseline: "116.48 s", Overhaul: "119.93 s", OverheadPct: 2.96},
		{Name: "Screen Capture", Baseline: "68.26 s", Overhaul: "69.86 s", OverheadPct: 2.34},
		{Name: "Shared Memory", Baseline: "234.86 s", Overhaul: "236.33 s", OverheadPct: 0.63},
		{Name: "Bonnie++", Baseline: "47319 files/s", Overhaul: "47265 files/s", OverheadPct: 0.11},
	}
}

// Counts sets the iteration counts. The paper's counts (10 M opens,
// 100 k pastes, 1 k captures, 10 G shm writes, 102,400 files) are
// impractical per run in CI; Default scales them down while keeping
// each measurement in the hundreds of milliseconds.
type Counts struct {
	DeviceOpens int
	Pastes      int
	Captures    int
	ShmWrites   int
	ShmPages    int
	Files       int
}

// Default returns CLI-scale counts.
func Default() Counts {
	return Counts{
		DeviceOpens: 100_000,
		Pastes:      20_000,
		Captures:    2_000,
		ShmWrites:   5_000_000,
		ShmPages:    2_048,
		Files:       51_200,
	}
}

// Quick returns test-scale counts.
func Quick() Counts {
	return Counts{
		DeviceOpens: 2_000,
		Pastes:      500,
		Captures:    100,
		ShmWrites:   100_000,
		ShmPages:    64,
		Files:       2_000,
	}
}

// Paper returns the paper's original counts (long-running).
func Paper() Counts {
	return Counts{
		DeviceOpens: 10_000_000,
		Pastes:      100_000,
		Captures:    1_000,
		ShmWrites:   10_000_000_000,
		ShmPages:    10_000,
		Files:       102_400,
	}
}

// wireWork is the simulated X transport cost applied to both servers.
const wireWork = 2

// shmCheckInterval amortizes the simulated shm guard (see
// ipc.SetCheckInterval).
const shmCheckInterval = 64

// storageRounds is the simulated per-create storage cost for the
// Bonnie++ row (see kernel.Config.StorageRounds).
const storageRounds = 1

// ErrBench wraps harness failures.
var ErrBench = errors.New("bench: harness failure")

// measurePair times two variants of the same operation over ops
// iterations each, interleaved in chunks so environmental drift (CPU
// frequency, background load, allocator state) hits both equally — the
// difference is what Table I reports, and it is far smaller than the
// drift on shared hardware. Both variants get a warmup pass and a GC
// fence first.
func measurePair(ops int, baseline, overhaul func(i int) error) (dBase, dOver time.Duration, median float64, err error) {
	warmup := ops / 10
	if warmup > 1000 {
		warmup = 1000
	}
	for i := 0; i < warmup; i++ {
		if err := baseline(i); err != nil {
			return 0, 0, 0, err
		}
		if err := overhaul(i); err != nil {
			return 0, 0, 0, err
		}
	}
	const chunks = 64
	chunk := ops / chunks
	if chunk == 0 {
		chunk = 1
	}
	var ratios []float64
	runtime.GC()
	for done := 0; done < ops; done += chunk {
		n := chunk
		if done+n > ops {
			n = ops - done
		}
		watch := startWall()
		for i := done; i < done+n; i++ {
			if err := baseline(i); err != nil {
				return 0, 0, 0, err
			}
		}
		tb := watch.lap()
		for i := done; i < done+n; i++ {
			if err := overhaul(i); err != nil {
				return 0, 0, 0, err
			}
		}
		to := watch.lap()
		dBase += tb
		dOver += to
		if tb > 0 {
			ratios = append(ratios, float64(to)/float64(tb))
		}
	}
	sort.Float64s(ratios)
	if len(ratios) > 0 {
		median = ratios[len(ratios)/2]
	}
	return dBase, dOver, median, nil
}

// bootOverhaul builds the measured system: enforcing + force-grant over
// the wall clock, with the calibrated cost models enabled.
func bootOverhaul() (*core.System, error) {
	return core.Boot(core.Options{
		Clock:            clock.System{},
		Enforce:          true,
		ForceGrant:       true,
		AlertSecret:      "bench",
		DeviceInitRounds: kernel.DefaultDeviceInitRounds,
		WireWork:         wireWork,
		StorageRounds:    storageRounds,
	})
}

// DeviceAccess measures the microphone-open path (Table I row 1).
func DeviceAccess(ops int) (Row, error) {
	row := Row{Name: "Device Access", Ops: ops}

	// Baseline: unmodified kernel; the device node exists but is not
	// registered with any permission monitor.
	clk := clock.System{}
	fsys := fs.New(clk)
	k, err := kernel.New(clk, fsys, kernel.Config{
		Monitor:          monitor.Config{Enforce: false},
		DeviceInitRounds: kernel.DefaultDeviceInitRounds,
	})
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	if err := fsys.MkdirAll("/dev/snd", 0o755, fs.Root); err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	const micPath = "/dev/snd/pcmC0D0c"
	if err := fsys.Mknod(micPath, "microphone", 0o666, fs.Root); err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	proc, err := k.Spawn(kernel.SpawnSpec{Name: "bench", Exe: "/usr/bin/bench", Cred: fs.Cred{UID: 1000, GID: 1000}})
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	// Overhaul: full system, device registered, force-grant.
	sys, err := bootOverhaul()
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	mic, err := sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	oProc, err := sys.LaunchHeadless("bench")
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	row.Baseline, row.Overhaul, row.medianRatio, err = measurePair(ops,
		func(int) error {
			_, err := k.Open(proc, micPath, fs.AccessRead)
			return err
		},
		func(int) error {
			_, err := sys.Kernel.Open(oProc, mic, fs.AccessRead)
			return err
		})
	if err != nil {
		return Row{}, fmt.Errorf("%w: device open: %v", ErrBench, err)
	}
	return row, nil
}

// clipboardPair prepares a source and target client with a selection
// already owned by the source.
func clipboardPair(srv *xserver.Server) (src, tgt *xserver.Client, srcWin, tgtWin xserver.WindowID, err error) {
	src, err = srv.Connect(9001, "src")
	if err != nil {
		return nil, nil, 0, 0, err
	}
	tgt, err = srv.Connect(9002, "tgt")
	if err != nil {
		return nil, nil, 0, 0, err
	}
	srcWin, err = src.CreateWindow(0, 0, 100, 100)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	tgtWin, err = tgt.CreateWindow(200, 0, 100, 100)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	if err := src.MapWindow(srcWin); err != nil {
		return nil, nil, 0, 0, err
	}
	if err := tgt.MapWindow(tgtWin); err != nil {
		return nil, nil, 0, 0, err
	}
	if err := src.SetSelection("CLIPBOARD", srcWin); err != nil {
		return nil, nil, 0, 0, err
	}
	return src, tgt, srcWin, tgtWin, nil
}

// pasteOnce runs one complete paste protocol round.
func pasteOnce(src, tgt *xserver.Client, tgtWin xserver.WindowID, payload []byte) error {
	if err := tgt.ConvertSelection("CLIPBOARD", "UTF8_STRING", "XSEL_DATA", tgtWin); err != nil {
		return err
	}
	req, ok := src.NextEvent()
	for ok && req.Type != xserver.SelectionRequest {
		req, ok = src.NextEvent()
	}
	if !ok {
		return errors.New("no SelectionRequest delivered")
	}
	if err := src.ChangeProperty(req.Requestor, req.Property, payload); err != nil {
		return err
	}
	notify := xserver.Event{
		Type:      xserver.SelectionNotify,
		Selection: "CLIPBOARD",
		Target:    req.Target,
		Property:  req.Property,
	}
	if err := src.SendEvent(req.Requestor, notify); err != nil {
		return err
	}
	ev, ok := tgt.NextEvent()
	for ok && ev.Type != xserver.SelectionNotify {
		ev, ok = tgt.NextEvent()
	}
	if !ok {
		return errors.New("no SelectionNotify delivered")
	}
	if _, err := tgt.GetProperty(req.Requestor, req.Property); err != nil {
		return err
	}
	return tgt.DeleteProperty(req.Requestor, req.Property)
}

// Clipboard measures paste operations, the costlier clipboard half
// (Table I row 2).
func Clipboard(ops int) (Row, error) {
	row := Row{Name: "Clipboard", Ops: ops}
	payload := []byte(strings.Repeat("x", 256))

	// Baseline: vanilla X server.
	base, err := xserver.NewServer(clock.System{}, nil, xserver.Config{WireWork: wireWork})
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	src, tgt, _, tgtWin, err := clipboardPair(base)
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	// Overhaul: force-grant system, full query path per paste.
	sys, err := bootOverhaul()
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	osrc, otgt, _, otgtWin, err := clipboardPair(sys.X)
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	row.Baseline, row.Overhaul, row.medianRatio, err = measurePair(ops,
		func(int) error { return pasteOnce(src, tgt, tgtWin, payload) },
		func(int) error { return pasteOnce(osrc, otgt, otgtWin, payload) })
	if err != nil {
		return Row{}, fmt.Errorf("%w: paste: %v", ErrBench, err)
	}
	return row, nil
}

// desktopContent populates a server with windows so root captures copy
// realistic amounts of pixel data.
func desktopContent(srv *xserver.Server, shooterPID int) (*xserver.Client, error) {
	content := []byte(strings.Repeat("p", 64*1024))
	for i := 0; i < 3; i++ {
		c, err := srv.Connect(8000+i, fmt.Sprintf("app%d", i))
		if err != nil {
			return nil, err
		}
		win, err := c.CreateWindow(i*300, 0, 200, 200)
		if err != nil {
			return nil, err
		}
		if err := c.MapWindow(win); err != nil {
			return nil, err
		}
		if err := c.Draw(win, content); err != nil {
			return nil, err
		}
	}
	return srv.Connect(shooterPID, "shooter")
}

// ScreenCapture measures full-screen GetImage requests (Table I row 3).
func ScreenCapture(ops int) (Row, error) {
	row := Row{Name: "Screen Capture", Ops: ops}

	base, err := xserver.NewServer(clock.System{}, nil, xserver.Config{WireWork: wireWork})
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	shooter, err := desktopContent(base, 8100)
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	sys, err := bootOverhaul()
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	oShooter, err := desktopContent(sys.X, 8100)
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	row.Baseline, row.Overhaul, row.medianRatio, err = measurePair(ops,
		func(int) error {
			_, err := shooter.GetImage(xserver.Root)
			return err
		},
		func(int) error {
			_, err := oShooter.GetImage(xserver.Root)
			return err
		})
	if err != nil {
		return Row{}, fmt.Errorf("%w: capture: %v", ErrBench, err)
	}
	return row, nil
}

// SharedMemory measures writes through a mapped shared-memory segment
// (Table I row 4): an unguarded segment versus the fault-interception
// machinery with the paper's 500 ms wait list.
func SharedMemory(writes, pages int) (Row, error) {
	row := Row{Name: "Shared Memory", Ops: writes}
	payload := []byte{0xAB, 0xCD, 0xEF, 0x01, 0x23, 0x45, 0x67, 0x89}

	baseShm, err := ipc.NewSharedMem(nil, clock.System{}, pages, 0)
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	baseMap := baseShm.Map(1)
	size := baseShm.Size()

	sys, err := bootOverhaul()
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	proc, err := sys.LaunchHeadless("shmbench")
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	shm, err := sys.Kernel.NewSharedMem(pages)
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	shm.SetCheckInterval(shmCheckInterval)
	m := shm.Map(proc.PID())
	row.Baseline, row.Overhaul, row.medianRatio, err = measurePair(writes,
		func(i int) error { return baseMap.Write((i*64)%(size-len(payload)), payload) },
		func(i int) error { return m.Write((i*64)%(size-len(payload)), payload) })
	if err != nil {
		return Row{}, fmt.Errorf("%w: shm write: %v", ErrBench, err)
	}
	return row, nil
}

// Filesystem measures empty-file creation through the augmented open
// path, Bonnie++-style (Table I row 5). Stat and unlink run untimed, as
// the paper could not measure any overhead there (Overhaul does not
// interpose on them). Creation chunks alternate between the two kernels
// so environmental drift cancels.
func Filesystem(files int) (Row, error) {
	row := Row{Name: "Bonnie++ (create)", Ops: files}

	type env struct {
		k    *kernel.Kernel
		fsys *fs.FS
		proc *kernel.Process
	}
	setup := func(k *kernel.Kernel, fsys *fs.FS) (*env, error) {
		proc, err := k.Spawn(kernel.SpawnSpec{Name: "bonnie", Exe: "/usr/bin/bonnie", Cred: fs.Root})
		if err != nil {
			return nil, err
		}
		if err := fsys.MkdirAll("/tmp/bonnie", 0o777, fs.Root); err != nil {
			return nil, err
		}
		return &env{k: k, fsys: fsys, proc: proc}, nil
	}
	createRange := func(e *env, lo, hi int) error {
		for i := lo; i < hi; i++ {
			h, err := e.k.Create(e.proc, fmt.Sprintf("/tmp/bonnie/f%07d", i), 0o644)
			if err != nil {
				return err
			}
			if err := h.Close(); err != nil {
				return err
			}
		}
		return nil
	}
	statUnlinkRange := func(e *env, lo, hi int) error {
		for i := lo; i < hi; i++ {
			path := fmt.Sprintf("/tmp/bonnie/f%07d", i)
			if _, err := e.k.Stat(e.proc, path); err != nil {
				return err
			}
			if err := e.k.Unlink(e.proc, path); err != nil {
				return err
			}
		}
		return nil
	}

	clk := clock.System{}
	baseFS := fs.New(clk)
	baseK, err := kernel.New(clk, baseFS, kernel.Config{
		Monitor:       monitor.Config{Enforce: false},
		StorageRounds: storageRounds,
	})
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	base, err := setup(baseK, baseFS)
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}

	sys, err := bootOverhaul()
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	// The sensitive mapping is populated, as on a real machine.
	if _, err := sys.Helper.Attach(devfs.ClassMicrophone); err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	if _, err := sys.Helper.Attach(devfs.ClassCamera); err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}
	over, err := setup(sys.Kernel, sys.FS)
	if err != nil {
		return Row{}, fmt.Errorf("%w: %v", ErrBench, err)
	}

	// Warmup both.
	for _, e := range []*env{base, over} {
		if err := createRange(e, 0, files/10); err != nil {
			return Row{}, fmt.Errorf("%w: warmup: %v", ErrBench, err)
		}
		if err := statUnlinkRange(e, 0, files/10); err != nil {
			return Row{}, fmt.Errorf("%w: warmup: %v", ErrBench, err)
		}
	}
	runtime.GC()

	const chunks = 64
	chunk := files / chunks
	if chunk == 0 {
		chunk = 1
	}
	var ratios []float64
	for done := 0; done < files; done += chunk {
		hi := done + chunk
		if hi > files {
			hi = files
		}
		watch := startWall()
		if err := createRange(base, done, hi); err != nil {
			return Row{}, fmt.Errorf("%w: baseline bonnie: %v", ErrBench, err)
		}
		tb := watch.lap()
		if err := createRange(over, done, hi); err != nil {
			return Row{}, fmt.Errorf("%w: overhaul bonnie: %v", ErrBench, err)
		}
		to := watch.lap()
		row.Baseline += tb
		row.Overhaul += to
		if tb > 0 {
			ratios = append(ratios, float64(to)/float64(tb))
		}
		// Untimed stat + delete phase, keeping both trees small.
		if err := statUnlinkRange(base, done, hi); err != nil {
			return Row{}, fmt.Errorf("%w: baseline bonnie: %v", ErrBench, err)
		}
		if err := statUnlinkRange(over, done, hi); err != nil {
			return Row{}, fmt.Errorf("%w: overhaul bonnie: %v", ErrBench, err)
		}
	}
	sort.Float64s(ratios)
	if len(ratios) > 0 {
		row.medianRatio = ratios[len(ratios)/2]
	}
	return row, nil
}

// TableI runs all five rows with the given counts. Rows are separated
// by GC fences so one row's retired heap is not billed to the next.
func TableI(c Counts) ([]Row, error) {
	rows := make([]Row, 0, 5)
	steps := []func() (Row, error){
		func() (Row, error) { return DeviceAccess(c.DeviceOpens) },
		func() (Row, error) { return Clipboard(c.Pastes) },
		func() (Row, error) { return ScreenCapture(c.Captures) },
		func() (Row, error) { return SharedMemory(c.ShmWrites, c.ShmPages) },
		func() (Row, error) { return Filesystem(c.Files) },
	}
	for _, step := range steps {
		row, err := step()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		runtime.GC()
	}
	return rows, nil
}

// Format renders measured rows next to the paper's numbers. The
// filesystem row additionally shows files/s, the unit Bonnie++ reports.
func Format(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %12s %12s %10s %14s\n", "Benchmark", "Baseline", "Overhaul", "Overhead", "Paper overhead")
	paper := PaperTableI()
	for i, r := range rows {
		paperPct := ""
		if i < len(paper) {
			paperPct = fmt.Sprintf("%.2f %%", paper[i].OverheadPct)
		}
		fmt.Fprintf(&b, "%-20s %12s %12s %9.2f%% %14s\n",
			r.Name, r.Baseline.Round(time.Millisecond), r.Overhaul.Round(time.Millisecond),
			r.OverheadPct(), paperPct)
		if strings.HasPrefix(r.Name, "Bonnie") && r.Baseline > 0 && r.Overhaul > 0 {
			fmt.Fprintf(&b, "%-20s %9.0f/s %9.0f/s\n", "  (file creation)",
				float64(r.Ops)/r.Baseline.Seconds(), float64(r.Ops)/r.Overhaul.Seconds())
		}
	}
	return b.String()
}
