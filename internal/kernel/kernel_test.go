package kernel

import (
	"errors"
	"testing"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/devfs"
	"overhaul/internal/fs"
	"overhaul/internal/monitor"
)

// testEnv bundles a kernel with its substrates and a devfs helper.
type testEnv struct {
	clk    *clock.Simulated
	fsys   *fs.FS
	k      *Kernel
	helper *devfs.Helper
}

func newEnv(t *testing.T, cfg Config) *testEnv {
	t.Helper()
	if cfg.Monitor.Threshold == 0 {
		cfg.Monitor.Threshold = monitor.DefaultThreshold
	}
	clk := clock.NewSimulated()
	fsys := fs.New(clk)
	k, err := New(clk, fsys, cfg)
	if err != nil {
		t.Fatalf("kernel.New: %v", err)
	}
	helper, err := devfs.NewHelper(fsys, k)
	if err != nil {
		t.Fatalf("devfs.NewHelper: %v", err)
	}
	return &testEnv{clk: clk, fsys: fsys, k: k, helper: helper}
}

func enforcing() Config {
	return Config{Monitor: monitor.Config{Enforce: true}}
}

func (e *testEnv) spawnUser(t *testing.T, name string) *Process {
	t.Helper()
	p, err := e.k.Spawn(SpawnSpec{Name: name, Exe: "/usr/bin/" + name, Cred: fs.Cred{UID: 1000, GID: 1000}})
	if err != nil {
		t.Fatalf("Spawn(%s): %v", name, err)
	}
	return p
}

// interact records an authentic interaction for p "now".
func (e *testEnv) interact(t *testing.T, p *Process) {
	t.Helper()
	if err := e.k.Monitor().Notify(p.PID(), e.clk.Now()); err != nil {
		t.Fatalf("Notify: %v", err)
	}
}

func TestSpawnAssignsPIDs(t *testing.T) {
	e := newEnv(t, enforcing())
	p1 := e.spawnUser(t, "a")
	p2 := e.spawnUser(t, "b")
	if p1.PID() == p2.PID() {
		t.Fatalf("duplicate pids: %d", p1.PID())
	}
	if p1.State() != StateRunning {
		t.Fatalf("state = %v", p1.State())
	}
	pids := e.k.PIDs()
	if len(pids) != 2 {
		t.Fatalf("PIDs = %v", pids)
	}
}

func TestSpawnRequiresName(t *testing.T) {
	e := newEnv(t, enforcing())
	if _, err := e.k.Spawn(SpawnSpec{}); err == nil {
		t.Fatal("Spawn with empty name succeeded")
	}
}

func TestDeviceOpenDeniedWithoutInteraction(t *testing.T) {
	e := newEnv(t, enforcing())
	mic, err := e.helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	spy := e.spawnUser(t, "spy")
	if _, err := e.k.Open(spy, mic, fs.AccessRead); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("Open = %v, want ErrAccessDenied", err)
	}
	if s := e.k.StatsSnapshot(); s.Denials != 1 || s.DeviceOpens != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDeviceOpenGrantedAfterInteraction(t *testing.T) {
	e := newEnv(t, enforcing())
	mic, err := e.helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	app := e.spawnUser(t, "skype")
	e.interact(t, app)
	e.clk.Advance(100 * time.Millisecond) // n < δ
	h, err := e.k.Open(app, mic, fs.AccessRead)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if h.DeviceClass() != string(devfs.ClassMicrophone) {
		t.Fatalf("class = %q", h.DeviceClass())
	}
}

func TestDeviceOpenDeniedWhenStale(t *testing.T) {
	e := newEnv(t, enforcing())
	cam, err := e.helper.Attach(devfs.ClassCamera)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	app := e.spawnUser(t, "cheese")
	e.interact(t, app)
	e.clk.Advance(3 * time.Second) // n >= δ
	if _, err := e.k.Open(app, cam, fs.AccessRead); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("Open after δ = %v, want ErrAccessDenied", err)
	}
}

func TestNonDeviceOpenUnaffected(t *testing.T) {
	e := newEnv(t, enforcing())
	if err := e.fsys.WriteFile("/etc-passwd", []byte("x"), 0o644, fs.Root); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	app := e.spawnUser(t, "cat")
	// No interaction at all: regular files must open normally (D1/D3 —
	// Overhaul only mediates sensitive devices).
	if _, err := e.k.Open(app, "/etc-passwd", fs.AccessRead); err != nil {
		t.Fatalf("Open: %v", err)
	}
}

func TestDetachedDeviceNotMediated(t *testing.T) {
	e := newEnv(t, enforcing())
	cam, err := e.helper.Attach(devfs.ClassCamera)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := e.helper.Detach(cam); err != nil {
		t.Fatalf("Detach: %v", err)
	}
	app := e.spawnUser(t, "app")
	// The node is gone entirely.
	if _, err := e.k.Open(app, cam, fs.AccessRead); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Open detached = %v, want ErrNotExist", err)
	}
}

func TestForkInheritsStampP1(t *testing.T) {
	e := newEnv(t, enforcing())
	parent := e.spawnUser(t, "run")
	e.interact(t, parent)
	stamp := parent.InteractionStamp()
	if stamp.IsZero() {
		t.Fatal("parent stamp not set")
	}
	child, err := parent.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if got := child.InteractionStamp(); !got.Equal(stamp) {
		t.Fatalf("child stamp = %v, want %v (P1)", got, stamp)
	}
	if child.PPID() != parent.PID() {
		t.Fatalf("ppid = %d", child.PPID())
	}
	kids := parent.Children()
	if len(kids) != 1 || kids[0] != child.PID() {
		t.Fatalf("children = %v", kids)
	}
}

func TestLauncherScenarioFigure3(t *testing.T) {
	// Figure 3: user interacts with Run; Run forks+execs Shot; Shot's
	// screen-capture-era device request must be granted via P1.
	e := newEnv(t, enforcing())
	cam, err := e.helper.Attach(devfs.ClassCamera)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	run := e.spawnUser(t, "run")
	e.interact(t, run)

	shot, err := run.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if err := shot.Exec("shot", "/usr/bin/shot"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if shot.Name() != "shot" {
		t.Fatalf("name after exec = %q", shot.Name())
	}
	e.clk.Advance(500 * time.Millisecond)
	if _, err := e.k.Open(shot, cam, fs.AccessRead); err != nil {
		t.Fatalf("child device open = %v, want grant via P1", err)
	}
}

func TestForkedChildStampExpiresIndependently(t *testing.T) {
	e := newEnv(t, enforcing())
	mic, err := e.helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	parent := e.spawnUser(t, "p")
	e.interact(t, parent)
	child, err := parent.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	e.clk.Advance(5 * time.Second)
	if _, err := e.k.Open(child, mic, fs.AccessRead); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("stale child open = %v, want deny", err)
	}
}

func TestExitRemovesProcess(t *testing.T) {
	e := newEnv(t, enforcing())
	p := e.spawnUser(t, "p")
	pid := p.PID()
	if err := p.Exit(); err != nil {
		t.Fatalf("Exit: %v", err)
	}
	if _, err := e.k.Process(pid); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("Process after exit = %v", err)
	}
	if err := p.Exit(); !errors.Is(err, ErrDeadProcess) {
		t.Fatalf("double Exit = %v", err)
	}
	if _, err := p.Fork(); !errors.Is(err, ErrDeadProcess) {
		t.Fatalf("Fork after exit = %v", err)
	}
	if _, err := e.k.Open(p, "/x", fs.AccessRead); !errors.Is(err, ErrDeadProcess) {
		t.Fatalf("Open after exit = %v", err)
	}
}

func TestPtraceDescendantOnly(t *testing.T) {
	e := newEnv(t, enforcing())
	a := e.spawnUser(t, "a")
	b := e.spawnUser(t, "b")
	// Unrelated processes with identical non-root creds cannot attach.
	if err := a.PtraceAttach(b); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("unrelated attach = %v, want ErrNotPermitted", err)
	}
	child, err := a.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if err := a.PtraceAttach(child); err != nil {
		t.Fatalf("parent attach: %v", err)
	}
	if !child.Traced() {
		t.Fatal("child not marked traced")
	}
	// Double attach fails.
	if err := a.PtraceAttach(child); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("double attach = %v", err)
	}
}

func TestPtraceGuardDisablesPermissions(t *testing.T) {
	// The launch-then-inject attack: malware forks a legitimate child,
	// lets it inherit an interaction stamp, then ptraces it to inject
	// code. The guard zeroes the child's permissions while traced.
	e := newEnv(t, enforcing())
	mic, err := e.helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	mal := e.spawnUser(t, "malware")
	e.interact(t, mal)
	victim, err := mal.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if err := mal.PtraceAttach(victim); err != nil {
		t.Fatalf("PtraceAttach: %v", err)
	}
	if _, err := e.k.Open(victim, mic, fs.AccessRead); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("traced open = %v, want deny", err)
	}
	// After detach, permissions come back (stamp still fresh).
	if err := mal.PtraceDetach(victim); err != nil {
		t.Fatalf("PtraceDetach: %v", err)
	}
	if _, err := e.k.Open(victim, mic, fs.AccessRead); err != nil {
		t.Fatalf("detached open = %v, want grant", err)
	}
}

func TestPtraceGuardToggle(t *testing.T) {
	e := newEnv(t, enforcing())
	mic, err := e.helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	parent := e.spawnUser(t, "ide")
	e.interact(t, parent)
	child, err := parent.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if err := parent.PtraceAttach(child); err != nil {
		t.Fatalf("PtraceAttach: %v", err)
	}
	// Non-root cannot flip the proc node.
	if err := e.k.SetPtraceGuard(fs.Cred{UID: 1000}, false); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("non-root toggle = %v", err)
	}
	// Root disables the guard for legitimate debugging.
	if err := e.k.SetPtraceGuard(fs.Root, false); err != nil {
		t.Fatalf("root toggle: %v", err)
	}
	if e.k.PtraceGuardEnabled() {
		t.Fatal("guard still enabled")
	}
	if _, err := e.k.Open(child, mic, fs.AccessRead); err != nil {
		t.Fatalf("traced open with guard off = %v, want grant", err)
	}
}

func TestPtraceDetachWrongTracer(t *testing.T) {
	e := newEnv(t, enforcing())
	a := e.spawnUser(t, "a")
	child, err := a.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	b := e.spawnUser(t, "b")
	if err := a.PtraceAttach(child); err != nil {
		t.Fatalf("attach: %v", err)
	}
	if err := b.PtraceDetach(child); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("wrong-tracer detach = %v", err)
	}
}

func TestAuthenticateTrustedBinary(t *testing.T) {
	e := newEnv(t, enforcing())
	const xPath = "/usr/bin/Xorg"
	if err := e.fsys.MkdirAll("/usr/bin", 0o755, fs.Root); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	if err := e.fsys.WriteFile(xPath, []byte("ELF"), 0o755, fs.Root); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	xorg, err := e.k.Spawn(SpawnSpec{Name: "Xorg", Exe: xPath, Cred: fs.Root})
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := e.k.AuthenticateTrustedBinary(xorg.PID(), xPath); err != nil {
		t.Fatalf("authenticate legit X: %v", err)
	}

	// An impostor running a different binary fails.
	fake := e.spawnUser(t, "fakex")
	if err := e.k.AuthenticateTrustedBinary(fake.PID(), xPath); err == nil {
		t.Fatal("impostor authenticated")
	}

	// A binary at the right path but owned by a user fails.
	const evilPath = "/usr/bin/evil-x"
	if err := e.fsys.WriteFile(evilPath, []byte("ELF"), 0o755, fs.Root); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := e.fsys.Chown(evilPath, fs.Cred{UID: 1000, GID: 1000}, fs.Root); err != nil {
		t.Fatalf("Chown: %v", err)
	}
	evil, err := e.k.Spawn(SpawnSpec{Name: "evil", Exe: evilPath, Cred: fs.Cred{UID: 1000}})
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := e.k.AuthenticateTrustedBinary(evil.PID(), evilPath); err == nil {
		t.Fatal("user-owned binary authenticated")
	}

	// Unknown PID fails.
	if err := e.k.AuthenticateTrustedBinary(9999, xPath); err == nil {
		t.Fatal("unknown pid authenticated")
	}
}

func TestUpdateRemoveMappingLifecycle(t *testing.T) {
	e := newEnv(t, enforcing())
	if err := e.k.UpdateMapping("/dev/x", devfs.ClassCamera); err != nil {
		t.Fatalf("UpdateMapping: %v", err)
	}
	if c, ok := e.k.SensitiveClassOf("/dev/x"); !ok || c != devfs.ClassCamera {
		t.Fatalf("SensitiveClassOf = %v, %v", c, ok)
	}
	if err := e.k.RemoveMapping("/dev/x"); err != nil {
		t.Fatalf("RemoveMapping: %v", err)
	}
	if _, ok := e.k.SensitiveClassOf("/dev/x"); ok {
		t.Fatal("mapping survived removal")
	}
}

func TestKernelFileSyscalls(t *testing.T) {
	e := newEnv(t, enforcing())
	p := e.spawnUser(t, "bonnie")
	if err := e.fsys.MkdirAll("/tmp", 0o777, fs.Root); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	h, err := e.k.Create(p, "/tmp/f", 0o644)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := e.k.Stat(p, "/tmp/f"); err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := e.k.Unlink(p, "/tmp/f"); err != nil {
		t.Fatalf("Unlink: %v", err)
	}
	if _, err := e.k.Stat(p, "/tmp/f"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Stat after unlink = %v", err)
	}
}

func TestFIFOPropagationThroughKernel(t *testing.T) {
	e := newEnv(t, enforcing())
	if err := e.fsys.MkdirAll("/tmp", 0o777, fs.Root); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	a := e.spawnUser(t, "writer")
	b := e.spawnUser(t, "reader")
	e.interact(t, a)

	if err := e.k.Mkfifo(a, "/tmp/fifo", 0o666); err != nil {
		t.Fatalf("Mkfifo: %v", err)
	}
	wEnd, err := e.k.OpenFIFO(a, "/tmp/fifo", fs.AccessWrite)
	if err != nil {
		t.Fatalf("OpenFIFO w: %v", err)
	}
	rEnd, err := e.k.OpenFIFO(b, "/tmp/fifo", fs.AccessRead)
	if err != nil {
		t.Fatalf("OpenFIFO r: %v", err)
	}
	if _, err := wEnd.Write(a.PID(), []byte("cmd")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := rEnd.Read(b.PID(), make([]byte, 8)); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := b.InteractionStamp(); !got.Equal(a.InteractionStamp()) {
		t.Fatalf("fifo did not propagate stamp: %v vs %v", got, a.InteractionStamp())
	}
}

func TestOpenFIFOOnRegularFileFails(t *testing.T) {
	e := newEnv(t, enforcing())
	p := e.spawnUser(t, "p")
	if err := e.fsys.WriteFile("/plain", nil, 0o666, fs.Root); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := e.k.OpenFIFO(p, "/plain", fs.AccessRead); err == nil {
		t.Fatal("OpenFIFO on regular file succeeded")
	}
}

func TestPipeViaKernelPropagates(t *testing.T) {
	e := newEnv(t, enforcing())
	a := e.spawnUser(t, "a")
	b := e.spawnUser(t, "b")
	e.interact(t, a)
	pipe := e.k.NewPipe()
	if _, err := pipe.Write(a.PID(), []byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := pipe.Read(b.PID(), make([]byte, 1)); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if b.InteractionStamp().IsZero() {
		t.Fatal("stamp not propagated through kernel pipe")
	}
}

func TestShmViaKernelUsesConfiguredWait(t *testing.T) {
	e := newEnv(t, enforcing())
	e.k.SetShmWait(100 * time.Millisecond)
	shm, err := e.k.NewSharedMem(1)
	if err != nil {
		t.Fatalf("NewSharedMem: %v", err)
	}
	p := e.spawnUser(t, "p")
	m := shm.Map(p.PID())
	if err := m.Write(0, []byte{1}); err != nil { // fault
		t.Fatalf("Write: %v", err)
	}
	e.clk.Advance(50 * time.Millisecond)
	if err := m.Write(0, []byte{2}); err != nil { // fast (inside 100ms)
		t.Fatalf("Write: %v", err)
	}
	e.clk.Advance(100 * time.Millisecond)
	if err := m.Write(0, []byte{3}); err != nil { // fault again
		t.Fatalf("Write: %v", err)
	}
	s := shm.StatsSnapshot()
	if s.Faults != 2 || s.FastAccesses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBrowserScenarioFigure4(t *testing.T) {
	// Figure 4: Browser receives the click, commands Tab over shared
	// memory; Tab then opens the camera. The shm fault propagation (P2)
	// must carry the stamp to Tab.
	e := newEnv(t, enforcing())
	cam, err := e.helper.Attach(devfs.ClassCamera)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	browser := e.spawnUser(t, "browser")
	tab, err := browser.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if err := tab.Exec("tab", "/usr/bin/browser"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	// Let any forked-in stamp age out, then interact with Browser only.
	e.clk.Advance(10 * time.Second)
	e.interact(t, browser)

	shm, err := e.k.NewSharedMem(4)
	if err != nil {
		t.Fatalf("NewSharedMem: %v", err)
	}
	bm := shm.Map(browser.PID())
	tm := shm.Map(tab.PID())
	if err := bm.Write(0, []byte("start-camera")); err != nil {
		t.Fatalf("browser shm write: %v", err)
	}
	if _, err := tm.Read(0, 12); err != nil {
		t.Fatalf("tab shm read: %v", err)
	}
	e.clk.Advance(200 * time.Millisecond)
	if _, err := e.k.Open(tab, cam, fs.AccessRead); err != nil {
		t.Fatalf("tab camera open = %v, want grant via P2", err)
	}
}

func TestCLIScenarioPtyThenFork(t *testing.T) {
	// §IV-B CLI interactions: xterm -> pty -> bash -> fork/exec tool ->
	// device open.
	e := newEnv(t, enforcing())
	mic, err := e.helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	xterm := e.spawnUser(t, "xterm")
	bash := e.spawnUser(t, "bash")
	e.interact(t, xterm)

	pty := e.k.NewPty()
	if _, err := pty.Write(1, xterm.PID(), []byte("arecord\n")); err != nil {
		t.Fatalf("pty write: %v", err)
	}
	if _, err := pty.Read(2, bash.PID(), make([]byte, 32)); err != nil {
		t.Fatalf("pty read: %v", err)
	}
	tool, err := bash.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if err := tool.Exec("arecord", "/usr/bin/arecord"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	e.clk.Advance(300 * time.Millisecond)
	if _, err := e.k.Open(tool, mic, fs.AccessRead); err != nil {
		t.Fatalf("CLI tool device open = %v, want grant", err)
	}
}

func TestNewValidation(t *testing.T) {
	clk := clock.NewSimulated()
	fsys := fs.New(clk)
	if _, err := New(nil, fsys, Config{}); err == nil {
		t.Fatal("New(nil clock) succeeded")
	}
	if _, err := New(clk, nil, Config{}); err == nil {
		t.Fatal("New(nil fs) succeeded")
	}
	if _, err := New(clk, fsys, Config{Monitor: monitor.Config{Threshold: -1}}); err == nil {
		t.Fatal("New(bad monitor config) succeeded")
	}
}

func TestStatsCounters(t *testing.T) {
	e := newEnv(t, enforcing())
	p := e.spawnUser(t, "p")
	if err := e.fsys.WriteFile("/f", nil, 0o666, fs.Root); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := e.k.Open(p, "/f", fs.AccessRead); err != nil {
		t.Fatalf("Open: %v", err)
	}
	c, err := p.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if err := c.Exec("c2", "/bin/c2"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if err := c.Exit(); err != nil {
		t.Fatalf("Exit: %v", err)
	}
	s := e.k.StatsSnapshot()
	if s.Opens != 1 || s.Forks != 1 || s.Execs != 1 || s.Exits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCloneAliasesFork(t *testing.T) {
	e := newEnv(t, enforcing())
	p := e.spawnUser(t, "p")
	e.interact(t, p)
	th, err := p.Clone()
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	if got := th.InteractionStamp(); !got.Equal(p.InteractionStamp()) {
		t.Fatal("thread did not inherit stamp")
	}
}
