package ipc

import (
	"testing"

	"overhaul/internal/clock"
)

// FuzzSharedMemAccess drives arbitrary offset/length accesses through a
// guarded segment: out-of-range must error, in-range must round-trip,
// and nothing may panic.
func FuzzSharedMemAccess(f *testing.F) {
	f.Add(0, 8, []byte("12345678"))
	f.Add(-1, 4, []byte("xxxx"))
	f.Add(4090, 10, []byte("overlap"))
	f.Fuzz(func(t *testing.T, off, n int, data []byte) {
		st := newFakeStamps()
		st.set(1, clock.Epoch)
		shm, err := NewSharedMem(st, clock.NewSimulated(), 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		m := shm.Map(1)
		werr := m.Write(off, data)
		if off >= 0 && off+len(data) <= PageSize {
			if werr != nil {
				t.Fatalf("in-range write [%d,%d) failed: %v", off, off+len(data), werr)
			}
			got, rerr := m.Read(off, len(data))
			if rerr != nil {
				t.Fatalf("read-back failed: %v", rerr)
			}
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("round trip mismatch at %d", i)
				}
			}
		} else if werr == nil {
			t.Fatalf("out-of-range write [%d,%d) accepted", off, off+len(data))
		}
		_, _ = m.Read(off, n) // must be total
	})
}

// FuzzMsgQueue drives arbitrary send/recv key patterns through both
// queue flavors.
func FuzzMsgQueue(f *testing.F) {
	f.Add(1, 0, []byte("m"))
	f.Add(-3, 7, []byte{})
	f.Fuzz(func(t *testing.T, key, filter int, body []byte) {
		st := newFakeStamps()
		st.set(1, clock.Epoch)
		st.set(2, clock.Epoch)
		for _, flavor := range []QueueFlavor{FlavorPOSIX, FlavorSysV} {
			q := NewMsgQueue(st, flavor, 8)
			serr := q.Send(1, key, body)
			if flavor == FlavorSysV && key <= 0 {
				if serr == nil {
					t.Fatal("SysV accepted non-positive mtype")
				}
				continue
			}
			if serr != nil {
				t.Fatalf("send: %v", serr)
			}
			gotKey, gotBody, rerr := q.Recv(2, 0)
			if rerr != nil {
				t.Fatalf("recv: %v", rerr)
			}
			if gotKey != key || len(gotBody) != len(body) {
				t.Fatalf("recv = (%d, %d bytes), want (%d, %d)", gotKey, len(gotBody), key, len(body))
			}
			_, _, _ = q.Recv(2, filter) // empty; must be total
		}
	})
}
