package xproto

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/telemetry"
	"overhaul/internal/xserver"
)

// Property: Encode then Decode is the identity on valid requests.
func TestRoundTripProperty(t *testing.T) {
	f := func(op uint8, win, win2 uint32, x, y, w, h int32, name, target, property string, evType uint8, data []byte) bool {
		req := Request{
			Op:      Opcode(op%uint8(OpCopyArea)) + 1,
			Window:  xserver.WindowID(win),
			Window2: xserver.WindowID(win2),
			X:       x, Y: y, W: w, H: h,
			Name:      clip(name),
			Target:    clip(target),
			Property:  clip(property),
			EventType: evType,
			Data:      clipBytes(data),
		}
		got, err := Decode(Encode(req))
		if err != nil {
			return false
		}
		return got.Op == req.Op && got.Window == req.Window && got.Window2 == req.Window2 &&
			got.X == req.X && got.Y == req.Y && got.W == req.W && got.H == req.H &&
			got.Name == req.Name && got.Target == req.Target && got.Property == req.Property &&
			got.EventType == req.EventType && bytes.Equal(got.Data, req.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// clip bounds strings to the u16 length prefix.
func clip(s string) string {
	if len(s) > 1<<15 {
		return s[:1<<15]
	}
	return s
}

func clipBytes(b []byte) []byte {
	if len(b) > 16*1024 {
		return b[:16*1024]
	}
	return b
}

// Property: Decode never panics and never returns both nil error and
// garbage for arbitrary byte soup.
func TestDecodeTotalProperty(t *testing.T) {
	f := func(msg []byte) bool {
		req, err := Decode(msg)
		if err != nil {
			return true
		}
		return req.Op >= OpCreateWindow && req.Op <= OpCopyArea
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Decode(nil) = %v", err)
	}
	if _, err := Decode([]byte{99, 0, 0, 0, 0}); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("bad opcode = %v", err)
	}
	huge := Encode(Request{Op: OpDraw})
	huge[1] = 0xFF
	huge[2] = 0xFF
	huge[3] = 0xFF
	huge[4] = 0x7F
	if _, err := Decode(huge); !errors.Is(err, ErrOversized) {
		t.Fatalf("oversized = %v", err)
	}
	short := Encode(Request{Op: OpDraw})
	if _, err := Decode(short[:len(short)-3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short = %v", err)
	}
}

// wireEnv boots a protected server with two wire-level clients.
type wireEnv struct {
	clk      *clock.Simulated
	srv      *xserver.Server
	src, tgt *xserver.Client
	srcWin   xserver.WindowID
	tgtWin   xserver.WindowID
}

// wirePolicy grants everything (the protocol path is under test, not δ).
type wirePolicy struct{}

func (wirePolicy) NotifyInteraction(telemetry.SpanContext, int, time.Time) error { return nil }
func (wirePolicy) Query(telemetry.SpanContext, int, xserver.Op, time.Time) (xserver.Verdict, error) {
	return xserver.VerdictGrant, nil
}

func newWireEnv(t *testing.T) *wireEnv {
	t.Helper()
	clk := clock.NewSimulated()
	srv, err := xserver.NewServer(clk, wirePolicy{}, xserver.Config{AlertSecret: "s"})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	e := &wireEnv{clk: clk, srv: srv}
	if e.src, err = srv.Connect(1, "src"); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if e.tgt, err = srv.Connect(2, "tgt"); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	mk := func(c *xserver.Client, x int32) xserver.WindowID {
		rep, err := HandleWire(c, Encode(Request{Op: OpCreateWindow, X: x, Y: 0, W: 100, H: 100}))
		if err != nil {
			t.Fatalf("CreateWindow over wire: %v", err)
		}
		if _, err := HandleWire(c, Encode(Request{Op: OpMapWindow, Window: rep.Window})); err != nil {
			t.Fatalf("MapWindow over wire: %v", err)
		}
		return rep.Window
	}
	e.srcWin = mk(e.src, 0)
	e.tgtWin = mk(e.tgt, 200)
	clk.Advance(2 * xserver.DefaultVisibilityThreshold)
	return e
}

// TestFullPasteOverWire drives the complete Figure 6 protocol purely
// through encoded bytes.
func TestFullPasteOverWire(t *testing.T) {
	e := newWireEnv(t)

	if _, err := HandleWire(e.src, Encode(Request{Op: OpSetSelection, Name: "CLIPBOARD", Window: e.srcWin})); err != nil {
		t.Fatalf("SetSelection: %v", err)
	}
	if _, err := HandleWire(e.tgt, Encode(Request{
		Op: OpConvertSelection, Name: "CLIPBOARD", Target: "UTF8_STRING", Property: "SEL", Window: e.tgtWin,
	})); err != nil {
		t.Fatalf("ConvertSelection: %v", err)
	}
	req, ok := e.src.NextEvent()
	if !ok || req.Type != xserver.SelectionRequest {
		t.Fatalf("owner got %+v", req)
	}
	if _, err := HandleWire(e.src, Encode(Request{
		Op: OpChangeProperty, Window: req.Requestor, Property: req.Property, Data: []byte("wire-data"),
	})); err != nil {
		t.Fatalf("ChangeProperty: %v", err)
	}
	if _, err := HandleWire(e.src, Encode(Request{
		Op: OpSendEvent, Window2: req.Requestor, EventType: uint8(xserver.SelectionNotify),
		Name: "CLIPBOARD", Target: req.Target, Property: req.Property,
	})); err != nil {
		t.Fatalf("SendEvent: %v", err)
	}
	rep, err := HandleWire(e.tgt, Encode(Request{Op: OpGetProperty, Window: e.tgtWin, Property: "SEL"}))
	if err != nil || string(rep.Data) != "wire-data" {
		t.Fatalf("GetProperty = %q, %v", rep.Data, err)
	}
	if _, err := HandleWire(e.tgt, Encode(Request{Op: OpDeleteProperty, Window: e.tgtWin, Property: "SEL"})); err != nil {
		t.Fatalf("DeleteProperty: %v", err)
	}
}

// TestWireAttacksStillBlocked: the Overhaul screens hold at the wire
// level too.
func TestWireAttacksStillBlocked(t *testing.T) {
	e := newWireEnv(t)
	if _, err := HandleWire(e.src, Encode(Request{Op: OpSetSelection, Name: "CLIPBOARD", Window: e.srcWin})); err != nil {
		t.Fatalf("SetSelection: %v", err)
	}
	// Forged SelectionRequest via wire SendEvent.
	_, err := HandleWire(e.tgt, Encode(Request{
		Op: OpSendEvent, Window2: e.srcWin, EventType: uint8(xserver.SelectionRequest),
		Name: "CLIPBOARD", Property: "LOOT",
	}))
	if !errors.Is(err, xserver.ErrBadAccess) {
		t.Fatalf("forged wire SelectionRequest = %v, want ErrBadAccess", err)
	}
	// Foreign-window draw via wire.
	_, err = HandleWire(e.tgt, Encode(Request{Op: OpDraw, Window: e.srcWin, Data: []byte("deface")}))
	if !errors.Is(err, xserver.ErrBadAccess) {
		t.Fatalf("foreign wire Draw = %v, want ErrBadAccess", err)
	}
}

func TestWireCaptureAndCopyArea(t *testing.T) {
	e := newWireEnv(t)
	if _, err := HandleWire(e.src, Encode(Request{Op: OpDraw, Window: e.srcWin, Data: []byte("pix")})); err != nil {
		t.Fatalf("Draw: %v", err)
	}
	rep, err := HandleWire(e.tgt, Encode(Request{Op: OpGetImage, Window: e.srcWin}))
	if err != nil || string(rep.Data) != "pix" {
		t.Fatalf("GetImage = %q, %v", rep.Data, err)
	}
	if _, err := HandleWire(e.tgt, Encode(Request{Op: OpCopyArea, Window: e.srcWin, Window2: e.tgtWin})); err != nil {
		t.Fatalf("CopyArea: %v", err)
	}
	if _, err := HandleWire(e.tgt, Encode(Request{
		Op: OpConfigureWindow, Window: e.tgtWin, X: 500, Y: 500, W: 50, H: 50,
	})); err != nil {
		t.Fatalf("ConfigureWindow: %v", err)
	}
}

func TestOpcodeStrings(t *testing.T) {
	for op := OpCreateWindow; op <= OpCopyArea; op++ {
		if name := op.String(); name == "" || name == fmt.Sprintf("Opcode(%d)", uint8(op)) {
			t.Fatalf("opcode %d missing a name: %q", op, name)
		}
	}
	if Opcode(0).String() != "Opcode(0)" {
		t.Fatalf("zero opcode name = %q", Opcode(0).String())
	}
}

// FuzzHandleWire feeds arbitrary bytes through decode+dispatch against a
// live protected server: nothing may panic, and errors must be typed.
func FuzzHandleWire(f *testing.F) {
	f.Add(Encode(Request{Op: OpCreateWindow, W: 10, H: 10}))
	f.Add(Encode(Request{Op: OpSetSelection, Name: "CLIPBOARD", Window: 1}))
	f.Add(Encode(Request{Op: OpGetImage, Window: 0}))
	f.Add([]byte{1, 2, 3})

	clk := clock.NewSimulated()
	srv, err := xserver.NewServer(clk, wirePolicy{}, xserver.Config{})
	if err != nil {
		f.Fatal(err)
	}
	c, err := srv.Connect(1, "fuzz")
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, msg []byte) {
		_, _ = HandleWire(c, msg) // must not panic
	})
}
