package analysis

import "encoding/json"

// SARIF output (Static Analysis Results Interchange Format 2.1.0):
// the minimal subset GitHub code scanning and most viewers consume —
// one run, one rule per analyzer, one result per finding with a
// physical location. Kept hand-rolled so go.mod stays
// dependency-free.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders findings as a SARIF 2.1.0 log. analyzers supplies the
// rule metadata; analyzers that produced no findings still appear as
// rules, so a viewer can tell "checked and clean" from "not checked".
func SARIF(diags []Diagnostic, analyzers []*Analyzer) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	// The suppression-syntax pseudo-analyzer can appear in findings.
	rules = append(rules, sarifRule{ID: "allow", ShortDescription: sarifMessage{Text: "malformed //overhaul:allow annotation"}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "overhaul-lint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
