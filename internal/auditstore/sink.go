package auditstore

import (
	"sync"
	"sync/atomic"

	"overhaul/internal/monitor"
)

// Tail incrementally mirrors a decision stream (the monitor's audit
// log, a fleet session's ring) into a store: each Sync appends every
// decision past the cursor. It is how the chaos runner keeps its
// durable trail in step with the in-memory audit between steps.
type Tail struct {
	mu      sync.Mutex
	st      Store
	session uint64
	cursor  int
}

// NewTail builds a tail over st, stamping every record with the given
// session id. The cursor starts at the store's current record count,
// so a tail over a freshly reopened store resumes exactly where the
// recovered prefix ends.
func NewTail(st Store, session uint64) (*Tail, error) {
	n, err := st.Count()
	if err != nil {
		return nil, err
	}
	return &Tail{st: st, session: session, cursor: n}, nil
}

// Cursor returns how many stream decisions have been durably appended.
func (t *Tail) Cursor() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cursor
}

// Sync appends stream[cursor:] to the store and advances the cursor
// per record appended. On a store failure it returns the number
// appended before the failure and the error; the cursor stays
// consistent, so a Reset to a reopened store resumes cleanly.
func (t *Tail) Sync(stream []monitor.Decision) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	appended := 0
	for t.cursor < len(stream) {
		if _, err := t.st.Append(FromDecision(stream[t.cursor], t.session)); err != nil {
			return appended, err
		}
		t.cursor++
		appended++
	}
	return appended, nil
}

// Rebind points the tail at a (typically reopened) store and re-anchors
// the cursor at its recovered record count: decisions the crash lost
// are re-appended by the next Sync, decisions that survived are not
// duplicated.
func (t *Tail) Rebind(st Store) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, err := st.Count()
	if err != nil {
		return err
	}
	t.st = st
	t.cursor = n
	return nil
}

// SinkStats counts what a SessionSink did — most importantly the
// appends that failed, because the sink itself swallows errors (an
// audit callback inside the decision path must never block or fail the
// decision).
type SinkStats struct {
	Appends atomic.Uint64
	Errors  atomic.Uint64
}

// SessionSink adapts a store to the fleet's per-session audit callback
// (fleet.Session.SetAuditSink): every decision is appended with the
// given session id. Append errors are counted in stats (nil for
// "don't care"), not returned — the decision path stays non-blocking
// and the store's fail-closed state is observable via stats.Errors and
// any later direct store use.
func SessionSink(st Store, session uint64, stats *SinkStats) func(monitor.Decision) {
	return func(d monitor.Decision) {
		_, err := st.Append(FromDecision(d, session))
		if stats != nil {
			stats.Appends.Add(1)
			if err != nil {
				stats.Errors.Add(1)
			}
		}
	}
}

// BatchAppender is the optional store capability BatchSink exploits:
// commit a contiguous run of records with one durable acknowledgement
// (FileStore's group commit).
type BatchAppender interface {
	Store
	AppendBatch([]Record) (uint64, error)
}

// BatchSink buffers a session's decisions and commits them in batches:
// the durable-ack wait is paid once per batch instead of once per
// decision, which is what lets a thousand sessions share one store at
// load-generator rates. Decisions are appended to the store in sink
// order; a batch is cut when the buffer reaches its limit, and Flush
// cuts whatever is pending (call it before reading the store or
// exiting). Errors are counted like SessionSink's, never returned into
// the decision path — a failed flush counts every record that was not
// durably acknowledged in stats.Errors as a dropped acknowledgement.
type BatchSink struct {
	mu      sync.Mutex
	st      Store
	ba      BatchAppender // non-nil when st commits batches natively
	session uint64
	limit   int
	buf     []Record
	stats   *SinkStats
}

// NewBatchSink builds a batching sink over st for one session. limit
// is the records-per-flush bound (values < 1 mean 1: degenerate to
// per-decision appends). If st implements BatchAppender, flushes use
// one AppendBatch; otherwise they fall back to per-record appends.
func NewBatchSink(st Store, session uint64, limit int, stats *SinkStats) *BatchSink {
	if limit < 1 {
		limit = 1
	}
	b := &BatchSink{st: st, session: session, limit: limit, stats: stats,
		buf: make([]Record, 0, limit)}
	b.ba, _ = st.(BatchAppender)
	return b
}

// Sink returns the fleet.Session.SetAuditSink callback.
func (b *BatchSink) Sink() func(monitor.Decision) {
	return func(d monitor.Decision) {
		b.mu.Lock()
		b.buf = append(b.buf, FromDecision(d, b.session))
		if len(b.buf) >= b.limit {
			b.flushLocked()
		}
		b.mu.Unlock()
	}
}

// Flush commits any buffered decisions now.
func (b *BatchSink) Flush() {
	b.mu.Lock()
	if len(b.buf) > 0 {
		b.flushLocked()
	}
	b.mu.Unlock()
}

func (b *BatchSink) flushLocked() {
	n := uint64(len(b.buf))
	attempted, dropped := n, uint64(0)
	if b.ba != nil {
		if _, err := b.ba.AppendBatch(b.buf); err != nil {
			dropped = n // the batch commits atomically: nothing was acked
		}
	} else {
		var acked uint64
		attempted = 0
		for _, r := range b.buf {
			attempted++
			if _, err := b.st.Append(r); err != nil {
				// acked records are durable; the failed one and the
				// never-attempted rest are dropped acknowledgements.
				dropped = n - acked
				break
			}
			acked++
		}
	}
	b.buf = b.buf[:0]
	if b.stats != nil {
		b.stats.Appends.Add(attempted)
		b.stats.Errors.Add(dropped)
	}
}
