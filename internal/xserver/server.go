package xserver

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/faultinject"
	"overhaul/internal/probe"
	"overhaul/internal/telemetry"
)

// Sentinel errors (the X protocol's error vocabulary, abridged).
var (
	ErrBadAccess    = errors.New("xserver: bad access")
	ErrBadWindow    = errors.New("xserver: bad window")
	ErrBadMatch     = errors.New("xserver: bad match")
	ErrBadAtom      = errors.New("xserver: bad atom")
	ErrDisconnected = errors.New("xserver: client disconnected")
)

// DefaultVisibilityThreshold is how long a window must have been mapped
// and visible before input delivered to it produces interaction
// notifications — the clickjacking defence from §IV-A.
const DefaultVisibilityThreshold = time.Second

// DefaultAlertDuration is how long a trusted-output alert stays on
// screen ("a few seconds", §IV-A).
const DefaultAlertDuration = 3 * time.Second

// Config parameterises the server.
type Config struct {
	// Width and Height give the screen size in pixels. Zero selects
	// 1920×1080.
	Width, Height int
	// VisibilityThreshold gates interaction notifications; zero
	// selects DefaultVisibilityThreshold; negative disables the
	// defence entirely (ablation only).
	VisibilityThreshold time.Duration
	// AlertDuration controls overlay lifetime; zero selects
	// DefaultAlertDuration.
	AlertDuration time.Duration
	// AlertSecret is the user-chosen visual shared secret rendered
	// into every authentic alert (the cat image in the paper's
	// Figure 5).
	AlertSecret string
	// DisableXTest rejects XTest extension requests outright — the
	// stricter deployment §IV-A contemplates for machines that do not
	// need GUI automation. Synthetic injection then has no entry point
	// at all.
	DisableXTest bool
	// WireWork models the per-request X protocol transport cost
	// (serialisation + socket round trip), in abstract work units.
	// The paper's clipboard numbers (~1.16 ms per paste) are dominated
	// by this cost; the in-process simulation would otherwise make
	// Overhaul's single extra permission query look disproportionate.
	// Zero (the default) disables it; the benchmark harness enables it
	// for both the baseline and the Overhaul server.
	WireWork int
	// FaultHook, when non-nil, is consulted at PointAlertRender on
	// every overlay render (chaos testing of the alert engine).
	FaultHook faultinject.Hook
	// Telemetry, when non-nil, receives input/notify/query/alert spans,
	// counters, and flight events. Nil disables instrumentation.
	Telemetry *telemetry.Recorder
	// Probes, when non-nil, arms the xserver.input attach point, fired
	// for every authentic hardware event dispatched to a window.
	Probes *probe.Registry
}

// Stats counts server activity.
type Stats struct {
	HardwareEvents   uint64
	SyntheticBlocked uint64 // synthetic events excluded from trusted input
	Notifications    uint64 // interaction notifications sent to the kernel
	Queries          uint64 // permission queries sent to the kernel
	AlertsShown      uint64
	CaptureRequests  uint64
	CaptureDenied    uint64
	// PolicyErrors counts kernel-channel calls that returned transport
	// errors (each fails closed).
	PolicyErrors uint64
	// AlertRenderFailures counts overlay renders that failed; the
	// alerts stay in the history with RenderFailed set.
	AlertRenderFailures uint64
}

// Server is the display server. It is safe for concurrent use.
type Server struct {
	clk    clock.Clock
	policy Policy
	cfg    Config
	tel    *telemetry.Recorder // immutable after NewServer; nil-safe
	// probeInput is the xserver.input attach point, resolved once;
	// unattached cost is one atomic load per hardware event.
	probeInput *probe.Hook

	mu         sync.Mutex
	clients    map[int]*Client // by connection id
	nextConn   int
	windows    map[WindowID]*window
	nextWindow WindowID
	stacking   []WindowID // bottom -> top
	focus      WindowID
	selections map[string]*selection
	alerts     []Alert
	degraded   string // non-empty: the channel to the kernel is failing
	stats      Stats
}

// window is the server-side window state.
type window struct {
	id              WindowID
	owner           *Client
	x, y            int
	w, h            int
	mapped          bool
	mappedAt        time.Time
	content         []byte
	props           map[string][]byte
	propSubscribers []*Client
	// inFlight names properties currently carrying clipboard data in
	// transit to this window's owner (paste protection, §IV-A).
	inFlight map[string]bool
}

// selection is the state of one selection atom (e.g. CLIPBOARD).
type selection struct {
	owner       *Client
	ownerWindow WindowID
	// pending is the in-progress transfer, nil when idle.
	pending *pendingTransfer
}

// pendingTransfer tracks steps (6)–(13) of the Figure 6 protocol.
type pendingTransfer struct {
	requestor       *Client
	requestorWindow WindowID
	property        string
	target          string
}

// NewServer constructs the display server. policy may be nil for a
// vanilla (non-Overhaul) server.
func NewServer(clk clock.Clock, policy Policy, cfg Config) (*Server, error) {
	if clk == nil {
		return nil, errors.New("xserver: nil clock")
	}
	if cfg.Width == 0 {
		cfg.Width = 1920
	}
	if cfg.Height == 0 {
		cfg.Height = 1080
	}
	if cfg.Width < 0 || cfg.Height < 0 {
		return nil, fmt.Errorf("xserver: invalid screen %dx%d", cfg.Width, cfg.Height)
	}
	switch {
	case cfg.VisibilityThreshold == 0:
		cfg.VisibilityThreshold = DefaultVisibilityThreshold
	case cfg.VisibilityThreshold < 0:
		cfg.VisibilityThreshold = 0 // defence off
	}
	if cfg.AlertDuration == 0 {
		cfg.AlertDuration = DefaultAlertDuration
	}
	return &Server{
		clk:        clk,
		policy:     policy,
		cfg:        cfg,
		tel:        cfg.Telemetry,
		probeInput: cfg.Probes.Hook(probe.HookXServerInput),
		clients:    make(map[int]*Client),
		nextConn:   1,
		windows:    make(map[WindowID]*window),
		nextWindow: 1,
		selections: make(map[string]*selection),
	}, nil
}

// Protected reports whether the server runs with an Overhaul policy.
func (s *Server) Protected() bool { return s.policy != nil }

// Degraded returns the reason the server considers its kernel channel
// broken and whether it currently does.
func (s *Server) Degraded() (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded, s.degraded != ""
}

// ClearDegraded resets the degraded episode (the channel was repaired,
// e.g. by the core reconnecting it).
func (s *Server) ClearDegraded() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.degraded = ""
}

// degradeLocked records a failed kernel-channel call and, on the first
// failure of an episode, raises the distinct protection-degraded
// banner on the overlay: the user must learn that enforcement — not
// policy — is why everything is suddenly blocked. Requires s.mu held
// (which is why the banner goes through renderAlertLocked, never
// ShowAlert).
func (s *Server) degradeLocked(reason string) {
	s.stats.PolicyErrors++
	s.tel.Add("xserver", "policy_errors", "", 1)
	if s.degraded != "" {
		return // episode already announced
	}
	s.degraded = reason
	s.tel.RecordEvent(telemetry.SpanContext{}, "xserver", "degradation",
		"protection degraded: "+reason)
	now := s.clk.Now()
	s.renderAlertLocked(Alert{
		Message:  "OVERHAUL protection degraded: " + reason + " — sensitive access is blocked",
		Secret:   s.cfg.AlertSecret,
		Blocked:  true,
		Degraded: true,
		ShownAt:  now,
		Expires:  now.Add(s.cfg.AlertDuration),
	})
}

// wireSink defeats dead-code elimination of the wire-work loop.
var wireSink uint64

// wire burns the simulated per-request transport cost. It must be
// called outside s.mu.
func (s *Server) wire() {
	if s.cfg.WireWork <= 0 {
		return
	}
	var sum uint64
	for i := 0; i < s.cfg.WireWork*1024; i++ {
		sum = sum*1099511628211 + uint64(i)
	}
	wireSink = sum
}

// StatsSnapshot returns a copy of the counters.
func (s *Server) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Connect attaches a new client. pid is the client process's PID; in
// the real system the server resolves it from the client socket via the
// kernel, so it is unforgeable — callers here are trusted test harness
// code standing in for that machinery.
func (s *Server) Connect(pid int, name string) (*Client, error) {
	if name == "" {
		return nil, errors.New("xserver: empty client name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &Client{srv: s, conn: s.nextConn, pid: pid, name: name}
	s.clients[s.nextConn] = c
	s.nextConn++
	return c, nil
}

// lookupWindow returns the window or ErrBadWindow. Requires s.mu held.
func (s *Server) lookupWindow(id WindowID) (*window, error) {
	w, ok := s.windows[id]
	if !ok {
		return nil, fmt.Errorf("window %d: %w", id, ErrBadWindow)
	}
	return w, nil
}

// raise moves id to the top of the stacking order. Requires s.mu held.
func (s *Server) raise(id WindowID) {
	for i, wid := range s.stacking {
		if wid == id {
			s.stacking = append(s.stacking[:i], s.stacking[i+1:]...)
			break
		}
	}
	s.stacking = append(s.stacking, id)
}

// topWindowAt returns the topmost mapped window containing (x, y).
// Requires s.mu held.
func (s *Server) topWindowAt(x, y int) *window {
	for i := len(s.stacking) - 1; i >= 0; i-- {
		w := s.windows[s.stacking[i]]
		if w == nil || !w.mapped {
			continue
		}
		if x >= w.x && x < w.x+w.w && y >= w.y && y < w.y+w.h {
			return w
		}
	}
	return nil
}

// visibleLongEnough reports whether w has been mapped at least the
// visibility threshold. Requires s.mu held.
func (s *Server) visibleLongEnough(w *window, now time.Time) bool {
	if !w.mapped {
		return false
	}
	return now.Sub(w.mappedAt) >= s.cfg.VisibilityThreshold
}

// obscured reports whether w's centre is covered by a different window
// higher in the stacking order. A fully covered focus window must not
// mint interactions: the user cannot see what they are typing into
// (S3). Requires s.mu held.
func (s *Server) obscured(w *window) bool {
	cx, cy := w.x+w.w/2, w.y+w.h/2
	top := s.topWindowAt(cx, cy)
	return top != nil && top != w
}

// WindowIDs returns all window ids in stacking order (bottom to top).
func (s *Server) WindowIDs() []WindowID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WindowID, len(s.stacking))
	copy(out, s.stacking)
	return out
}

// ClientNames returns connected client names, sorted (diagnostics).
func (s *Server) ClientNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.clients))
	for _, c := range s.clients {
		out = append(out, c.name)
	}
	sort.Strings(out)
	return out
}
