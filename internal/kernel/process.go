package kernel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"overhaul/internal/fs"
	"overhaul/internal/telemetry"
)

// Process is the task_struct analogue: one schedulable task. Linux does
// not strictly distinguish processes from threads — each gets its own
// task_struct — and neither do we: Clone covers both.
//
// The fields the permission decision path reads — interaction stamp,
// its minting span, and the tracer pid — are atomics, so a concurrent
// Decide never blocks on a process mutating its own state.
type Process struct {
	k    *Kernel
	pid  int
	ppid int

	// stamp is the interaction timestamp (the Overhaul field) as unix
	// nanos; see stampNanos. Written only through adoptStamp's CAS-max
	// loop, so it is monotonically non-decreasing.
	stamp atomic.Int64
	// stampSpan is the trace span that minted stamp (nil when
	// telemetry is off or the stamp arrived without context). It is
	// updated and inherited in lockstep with stamp: fork copies it
	// (P1) and IPC propagation carries it alongside the stamp (P2), so
	// a permission query can always be traced back to the interaction
	// that enables it. Under a CAS race the span may briefly describe
	// a different write than the stamp; both are then authentic
	// near-simultaneous interactions, and the skew only affects trace
	// linkage, never the verdict.
	stampSpan atomic.Pointer[telemetry.SpanContext]
	// tracedBy is the tracer PID, 0 when not traced.
	tracedBy atomic.Int32

	mu       sync.Mutex
	name     string
	exe      string
	cred     fs.Cred
	state    State
	children []int
}

// PID returns the process identifier.
func (p *Process) PID() int { return p.pid }

// PPID returns the parent's PID (0 for initial processes).
func (p *Process) PPID() int { return p.ppid }

// Name returns the process name (comm).
func (p *Process) Name() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.name
}

// Executable returns the path the process's code is mapped from.
func (p *Process) Executable() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exe
}

// Cred returns the process credentials.
func (p *Process) Cred() fs.Cred {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cred
}

// InteractionStamp returns the Overhaul interaction timestamp.
func (p *Process) InteractionStamp() time.Time {
	return stampTime(p.stamp.Load())
}

// StampSpan returns the trace span that minted the current interaction
// stamp (zero when unknown).
func (p *Process) StampSpan() telemetry.SpanContext {
	if c := p.stampSpan.Load(); c != nil {
		return *c
	}
	return telemetry.SpanContext{}
}

// adoptStamp installs t (and the span that delivered it) iff t is newer
// than the current stamp — the newest-wins rule as a lock-free CAS-max.
// The CAS winner stores the span, keeping stamp and span a unit on the
// common uncontended path. A zero t never installs.
func (p *Process) adoptStamp(t time.Time, ctx telemetry.SpanContext) {
	n := stampNanos(t)
	if n == 0 {
		return
	}
	for {
		cur := p.stamp.Load()
		if n <= cur {
			return
		}
		if p.stamp.CompareAndSwap(cur, n) {
			if ctx == (telemetry.SpanContext{}) {
				p.stampSpan.Store(nil)
			} else {
				c := ctx
				p.stampSpan.Store(&c)
			}
			return
		}
	}
}

// State returns the lifecycle state.
func (p *Process) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Children returns the PIDs of the process's children.
func (p *Process) Children() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.children))
	copy(out, p.children)
	return out
}

// alive reports whether the process can issue syscalls.
func (p *Process) alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state == StateRunning
}

// SpawnSpec describes an initial process created from outside the
// simulation (init, the display server, the trusted helper, ...).
type SpawnSpec struct {
	Name string
	Exe  string
	Cred fs.Cred
}

// Spawn creates a fresh process with no parent and no interaction
// history.
func (k *Kernel) Spawn(spec SpawnSpec) (*Process, error) {
	if spec.Name == "" {
		return nil, errors.New("spawn: empty process name")
	}
	p := &Process{
		k:     k,
		pid:   int(k.nextPID.Add(1)),
		name:  spec.Name,
		exe:   spec.Exe,
		cred:  spec.Cred,
		state: StateRunning,
	}
	k.table.put(p)
	return p, nil
}

// Fork duplicates the process, Linux-style: the child gets a copy of the
// task struct — *including the interaction timestamp*. This is how
// propagation policy P1 falls out of the implementation "for free"
// (paper §IV-B, "Process creation and IPC").
func (p *Process) Fork() (*Process, error) {
	if !p.alive() {
		return nil, fmt.Errorf("fork from pid %d: %w", p.pid, ErrDeadProcess)
	}
	k := p.k

	p.mu.Lock()
	name, exe, cred := p.name, p.exe, p.cred
	p.mu.Unlock()
	stamp := p.stamp.Load()
	stampSpan := p.stampSpan.Load()
	if k.disableP1 {
		stamp = 0 // ablation: no inheritance
		stampSpan = nil
	}

	child := &Process{
		k:     k,
		pid:   int(k.nextPID.Add(1)),
		ppid:  p.pid,
		name:  name,
		exe:   exe,
		cred:  cred,
		state: StateRunning,
	}
	child.stamp.Store(stamp)         // P1: inherited
	child.stampSpan.Store(stampSpan) // the minting span inherits with it
	k.table.put(child)
	k.stats.forks.Add(1)

	p.mu.Lock()
	p.children = append(p.children, child.pid)
	p.mu.Unlock()
	return child, nil
}

// Clone is an alias for Fork covering threads: Linux backs both with a
// new task_struct, so interaction stamps propagate to threads the same
// way.
func (p *Process) Clone() (*Process, error) { return p.Fork() }

// Exec replaces the process image. The task struct — and therefore the
// interaction stamp — survives, exactly as execve leaves task_struct in
// place on Linux.
func (p *Process) Exec(name, exe string) error {
	if !p.alive() {
		return fmt.Errorf("exec in pid %d: %w", p.pid, ErrDeadProcess)
	}
	if name == "" {
		return errors.New("exec: empty process name")
	}
	p.mu.Lock()
	p.name = name
	p.exe = exe
	p.mu.Unlock()

	p.k.stats.execs.Add(1)
	return nil
}

// Exit terminates the process and removes it from the process table.
func (p *Process) Exit() error {
	p.mu.Lock()
	if p.state != StateRunning {
		p.mu.Unlock()
		return fmt.Errorf("exit pid %d: %w", p.pid, ErrDeadProcess)
	}
	p.state = StateDead
	p.mu.Unlock()

	p.k.table.remove(p.pid)
	p.k.stats.exits.Add(1)
	return nil
}

// --- ptrace ---------------------------------------------------------------

// PtraceAttach lets the process attach to target as a debugger. As on
// Linux (Yama-style restriction the paper cites), only direct
// descendants may be traced. While the Overhaul ptrace guard is on, the
// tracee's sensitive permissions are disabled for the duration — which
// also neutralises launch-then-inject attacks through a parent tracing
// its own child.
func (p *Process) PtraceAttach(target *Process) error {
	if !p.alive() {
		return fmt.Errorf("ptrace from pid %d: %w", p.pid, ErrDeadProcess)
	}
	if target == nil || !target.alive() {
		return fmt.Errorf("ptrace: target: %w", ErrDeadProcess)
	}
	if target.PPID() != p.pid && p.Cred().UID != 0 {
		return fmt.Errorf("ptrace pid %d from pid %d: not a direct descendant: %w",
			target.pid, p.pid, ErrNotPermitted)
	}
	if !target.tracedBy.CompareAndSwap(0, int32(p.pid)) {
		return fmt.Errorf("ptrace pid %d: already traced by %d: %w",
			target.pid, target.tracedBy.Load(), ErrNotPermitted)
	}
	return nil
}

// PtraceDetach releases a tracee previously attached by this process.
func (p *Process) PtraceDetach(target *Process) error {
	if target == nil {
		return errors.New("ptrace detach: nil target")
	}
	if !target.tracedBy.CompareAndSwap(int32(p.pid), 0) {
		return fmt.Errorf("ptrace detach pid %d: not traced by %d: %w",
			target.pid, p.pid, ErrNotPermitted)
	}
	return nil
}

// Traced reports whether the process is currently being ptraced.
func (p *Process) Traced() bool {
	return p.tracedBy.Load() != 0
}
