// Command overhaul-benchjson converts `go test -bench -benchmem`
// output into the machine-readable BENCH_overhaul.json the repository
// keeps at its root: a map from benchmark name to ns/op and allocs/op.
//
//	go test -bench=. -benchmem -run='^$' ./... > bench.out
//	overhaul-benchjson -in bench.out -out BENCH_overhaul.json
//
// The parse is strict: zero recognisable benchmark lines, or a line
// that starts like a benchmark but fails to parse, is an error — CI
// runs this to fail on malformed bench output rather than silently
// recording nothing. The -check mode validates an existing JSON file
// instead of writing one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded cost.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
// BenchmarkDecideTelemetryDisabled-8  9416926  120.7 ns/op  0 B/op  0 allocs/op
// The name is kept verbatim (including any -GOMAXPROCS suffix):
// sub-benchmark names like cap-256 are indistinguishable from the
// suffix syntactically, and stripping would collide them.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ B/op\s+(\d+) allocs/op)?`)

func main() {
	os.Exit(run())
}

func run() int {
	in := flag.String("in", "-", "bench output to parse ('-' = stdin)")
	out := flag.String("out", "BENCH_overhaul.json", "JSON file to write")
	check := flag.String("check", "", "validate this existing JSON file and exit")
	flag.Parse()

	if *check != "" {
		if err := validate(*check); err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-benchjson:", err)
			return 1
		}
		return 0
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhaul-benchjson:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	entries, err := parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-benchjson:", err)
		return 1
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-benchjson:", err)
		return 1
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "overhaul-benchjson:", err)
		return 1
	}
	fmt.Printf("wrote %s: %d benchmarks\n", *out, len(entries))
	return 0
}

// parse extracts every benchmark line, keyed by the full benchmark
// name exactly as go test printed it.
func parse(r io.Reader) (map[string]Entry, error) {
	entries := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		// A bare "BenchmarkFoo" line (no fields yet) precedes the result
		// line in verbose output; skip it, but flag anything else that
		// looks like a result and does not parse.
		if !strings.Contains(line, "ns/op") {
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed ns/op in %q: %v", line, err)
		}
		var allocs int64
		if m[3] != "" {
			if allocs, err = strconv.ParseInt(m[3], 10, 64); err != nil {
				return nil, fmt.Errorf("malformed allocs/op in %q: %v", line, err)
			}
		}
		entries[m[1]] = Entry{NsPerOp: ns, AllocsPerOp: allocs}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no benchmark lines found: was the input produced by go test -bench -benchmem?")
	}
	return entries, nil
}

// validate checks that an existing JSON file is a non-empty map of
// well-formed entries.
func validate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries map[string]Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("%s: no benchmarks recorded", path)
	}
	for name, e := range entries {
		if !strings.HasPrefix(name, "Benchmark") {
			return fmt.Errorf("%s: entry %q does not name a benchmark", path, name)
		}
		if e.NsPerOp <= 0 {
			return fmt.Errorf("%s: %s has non-positive ns/op %v", path, name, e.NsPerOp)
		}
		if e.AllocsPerOp < 0 {
			return fmt.Errorf("%s: %s has negative allocs/op %d", path, name, e.AllocsPerOp)
		}
	}
	return nil
}
