package analysis

import (
	"go/ast"
	"strings"
)

// Errdrop flags silently discarded error returns in internal packages.
// A denial from the permission monitor, a dead-process error from the
// kernel, or a closed-pipe error from IPC that vanishes into an
// ignored return value is exactly how an access-control bypass hides;
// every error must be handled, returned, or *visibly* discarded.
//
// Without type information the analyzer is driven by a module-wide
// name index: a bare call statement is flagged when any function or
// method declared in the module under that name returns an error,
// plus a small set of conventional error-returning method names
// (Close, Flush, Sync). Deliberate discards stay available in two
// explicit forms: assigning to blank (_ = f()) or an
// //overhaul:allow errdrop annotation. defer/go statements are exempt
// — release-on-exit cleanups have nowhere to put the error.
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc: "internal packages must not silently drop error returns; " +
		"discard explicitly with _ = or an allow annotation",
	Run: runErrdrop,
}

// conventionalErr are method names that return an error by stdlib
// convention even when no module declaration says so.
var conventionalErr = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func runErrdrop(pass *Pass) {
	if !strings.Contains(pass.Pkg.Dir, "internal") {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isTestFile(f.Name) {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if name == "" {
				return true
			}
			if conventionalErr[name] || pass.Module.ReturnsError(name) {
				pass.ReportFix(call.Pos(), discardFix(pass, name, call),
					"result of %s is dropped but a declaration of %s returns an error: handle it or discard with _ =",
					name, name)
			}
			return true
		})
	}
}

// discardFix proposes rewriting `f()` into `_ = f()` (one blank per
// result). No fix is offered when module declarations of the name
// disagree on arity — a wrong blank count would not compile.
func discardFix(pass *Pass, name string, call *ast.CallExpr) []SuggestedFix {
	count, ok := pass.Module.ResultCount(name)
	if !ok {
		// Ambiguous module declarations: a wrong blank count would
		// not compile, so offer nothing. The stdlib convention (one
		// error result) applies only to names the module never
		// declares itself.
		if pass.Module.DeclaresFunc(name) || !conventionalErr[name] {
			return nil
		}
		count = 1
	}
	if count < 1 {
		return nil
	}
	blanks := "_"
	for i := 1; i < count; i++ {
		blanks += ", _"
	}
	return []SuggestedFix{{
		Message: "discard the result explicitly",
		Edits:   []TextEdit{pass.Edit(call.Pos(), call.Pos(), blanks+" = ")},
	}}
}

// calleeName extracts the bare name of the called function or method.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
