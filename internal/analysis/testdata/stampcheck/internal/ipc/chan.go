package ipc

// Chan is an IPC family whose transfer methods must run the stamp
// protocol.
type Chan struct {
	ts  carrier
	buf []byte
}

// Write runs the sender half directly.
func (c *Chan) Write(pid int, data []byte) {
	c.ts.onSend(pid)
	c.buf = append(c.buf, data...)
}

// Read runs the receiver half directly.
func (c *Chan) Read(pid int, dst []byte) int {
	n := copy(dst, c.buf)
	c.ts.onRecv(pid)
	return n
}

// stampThrough is an intermediate helper on the propagation path.
func (c *Chan) stampThrough(pid int) { c.ts.onAccess(pid) }

// WriteIndirect reaches the protocol transitively through a helper.
func (c *Chan) WriteIndirect(pid int, data []byte) {
	c.stampThrough(pid)
	c.buf = append(c.buf, data...)
}

// WriteLeak transfers data without embedding the sender's stamp.
func (c *Chan) WriteLeak(pid int, data []byte) { // want "sender"
	c.buf = append(c.buf, data...)
}

// RecvLeak delivers data without adopting the channel's stamp.
func (c *Chan) RecvLeak(pid int) byte { // want "receiver"
	return c.buf[0]
}

// Len carries no payload and is exempt.
func (c *Chan) Len() int { return len(c.buf) }
