package apps

import (
	"errors"
	"testing"
	"time"
)

func TestDBusRoutesMessages(t *testing.T) {
	sys, _, _ := boot(t)
	bus, err := NewBus(sys)
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}
	a, err := sys.LaunchHeadless("service-a")
	if err != nil {
		t.Fatalf("LaunchHeadless: %v", err)
	}
	b, err := sys.LaunchHeadless("service-b")
	if err != nil {
		t.Fatalf("LaunchHeadless: %v", err)
	}
	ca, err := bus.Attach(a, "org.example.A")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	cb, err := bus.Attach(b, "org.example.B")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := ca.Send("org.example.B", []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msg, err := cb.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if msg.Sender != "org.example.A" || msg.Dest != "org.example.B" || string(msg.Body) != "hello" {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestDBusPropagatesStampsAutomatically(t *testing.T) {
	// The §IV-B claim: D-Bus rides on UNIX sockets, so Overhaul's P2
	// propagation covers it with zero bus-specific code. A GUI app with
	// an interaction asks a headless media service (via the bus) to
	// record; the service's mic open is granted.
	sys, mic, _ := boot(t)
	bus, err := NewBus(sys)
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}

	gui, err := sys.Launch("settings-ui")
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	svc, err := sys.LaunchHeadless("media-service")
	if err != nil {
		t.Fatalf("LaunchHeadless: %v", err)
	}
	cGui, err := bus.Attach(gui.Proc, "org.example.UI")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	cSvc, err := bus.Attach(svc, "org.example.Media")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	settle(sys)

	// Without any interaction, the service is locked out.
	if _, err := sys.Kernel.Open(svc, mic, 1); err == nil {
		t.Fatal("idle service opened the microphone")
	}

	// The user clicks in the GUI; the request crosses the bus.
	if err := gui.Click(); err != nil {
		t.Fatalf("Click: %v", err)
	}
	sys.Settle(30 * time.Millisecond)
	if err := cGui.Send("org.example.Media", []byte("start-recording")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msg, err := cSvc.Recv()
	if err != nil || string(msg.Body) != "start-recording" {
		t.Fatalf("Recv = %+v, %v", msg, err)
	}
	sys.Settle(30 * time.Millisecond)
	if _, err := sys.Kernel.Open(svc, mic, 1); err != nil {
		t.Fatalf("service mic open = %v, want grant via bus propagation", err)
	}
	// The daemon itself also carries the stamp (it relayed the
	// message) — consistent with P2's sender→receiver semantics.
	if bus.Daemon().InteractionStamp().IsZero() {
		t.Fatal("daemon did not adopt the stamp while relaying")
	}
}

func TestDBusNameRegistry(t *testing.T) {
	sys, _, _ := boot(t)
	bus, err := NewBus(sys)
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}
	p, err := sys.LaunchHeadless("svc")
	if err != nil {
		t.Fatalf("LaunchHeadless: %v", err)
	}
	if _, err := bus.Attach(p, "org.x"); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if _, err := bus.Attach(p, "org.x"); !errors.Is(err, ErrNameTaken) {
		t.Fatalf("duplicate Attach = %v", err)
	}
	if _, err := bus.Attach(p, ""); err == nil {
		t.Fatal("empty name accepted")
	}
	c, err := bus.Attach(p, "org.y")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := c.Send("org.absent", nil); !errors.Is(err, ErrNoSuchName) {
		t.Fatalf("Send to absent = %v", err)
	}
	if got := len(bus.Names()); got != 2 {
		t.Fatalf("names = %d", got)
	}
}
