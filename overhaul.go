// Package overhaul is the public API of the Overhaul reproduction: a
// complete, simulated implementation of "Overhaul: Input-Driven Access
// Control for Better Privacy on Traditional Operating Systems"
// (Onarlioglu, Robertson, Kirda — DSN 2016).
//
// A System is a booted machine: a simulated Linux-like kernel with the
// Overhaul permission monitor, an X11-like display server with trusted
// input and output paths, an authenticated netlink channel between them,
// and a udev-style trusted helper managing sensitive device nodes.
// Applications launched on the system are ordinary processes and X
// clients with no knowledge of Overhaul; access to the microphone,
// camera, screen contents, and clipboard is granted exactly when it is
// temporally close to authentic hardware input directed at the
// requesting application (or an ancestor/IPC peer, via the propagation
// policies P1 and P2).
//
// Quick start:
//
//	sys, err := overhaul.New(overhaul.Config{Enforce: true, AlertSecret: "tabby-cat"})
//	mic, err := sys.AttachDevice(overhaul.Microphone)
//	app, err := sys.Launch("recorder")
//	sys.Settle(2 * time.Second) // window becomes trustworthy
//	_ = app.Click()             // authentic hardware input
//	h, err := app.OpenDevice(mic) // granted: click was moments ago
package overhaul

import (
	"fmt"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/core"
	"overhaul/internal/devfs"
	"overhaul/internal/kernel"
	"overhaul/internal/monitor"
	"overhaul/internal/xserver"
)

// Re-exported types: the assembled system and its handles.
type (
	// System is a booted Overhaul machine.
	System = core.System
	// App is a launched application (process + X client + window).
	App = core.App
	// Alert is a trusted-output overlay notification.
	Alert = xserver.Alert
	// Decision is one permission-monitor audit record.
	Decision = monitor.Decision
	// DeviceClass names a category of sensitive hardware.
	DeviceClass = devfs.Class
	// Op names a mediated operation (mic, cam, scr, copy, paste).
	Op = monitor.Op
	// Verdict is a permission decision outcome.
	Verdict = monitor.Verdict
	// Process is a kernel process handle.
	Process = kernel.Process
)

// Device classes.
const (
	Microphone = devfs.ClassMicrophone
	Camera     = devfs.ClassCamera
	GPS        = devfs.ClassGPS
	Scanner    = devfs.ClassScanner
)

// Operations and verdicts.
const (
	OpCopy       = monitor.OpCopy
	OpPaste      = monitor.OpPaste
	OpScreen     = monitor.OpScreen
	OpMic        = monitor.OpMic
	OpCam        = monitor.OpCam
	VerdictGrant = monitor.VerdictGrant
	VerdictDeny  = monitor.VerdictDeny
)

// DefaultThreshold is δ, the paper's 2-second temporal proximity window.
const DefaultThreshold = monitor.DefaultThreshold

// Config selects the system's security posture.
type Config struct {
	// Enforce turns blocking on. False boots an observe-only machine
	// (every access granted but audited) — the paper's unprotected
	// baseline.
	Enforce bool
	// Threshold overrides δ. Zero selects DefaultThreshold.
	Threshold time.Duration
	// AlertSecret is the user's visual shared secret rendered into
	// authentic alerts.
	AlertSecret string
	// VisibilityThreshold overrides how long a window must be visible
	// before its input counts (clickjacking defence; zero = 1 s).
	VisibilityThreshold time.Duration
	// ShmWait overrides the shared-memory wait-list duration
	// (zero = 500 ms).
	ShmWait time.Duration
	// RealTime uses the wall clock instead of a deterministic
	// simulated clock.
	RealTime bool
	// DisablePtraceGuard turns off the traced-process permission
	// guard (ablation only).
	DisablePtraceGuard bool
}

// New boots an Overhaul machine.
func New(cfg Config) (*System, error) {
	var clk clock.Clock
	if cfg.RealTime {
		clk = clock.System{}
	}
	sys, err := core.Boot(core.Options{
		Clock:               clk,
		Enforce:             cfg.Enforce,
		Threshold:           cfg.Threshold,
		AlertSecret:         cfg.AlertSecret,
		VisibilityThreshold: cfg.VisibilityThreshold,
		ShmWait:             cfg.ShmWait,
		DisablePtraceGuard:  cfg.DisablePtraceGuard,
	})
	if err != nil {
		return nil, fmt.Errorf("overhaul: %w", err)
	}
	return sys, nil
}

// NewProtected boots an enforcing machine with a microphone and camera
// attached, returning their device paths — the most common setup.
func NewProtected(secret string) (sys *System, micPath, camPath string, err error) {
	sys, err = New(Config{Enforce: true, AlertSecret: secret})
	if err != nil {
		return nil, "", "", err
	}
	micPath, err = sys.Helper.Attach(devfs.ClassMicrophone)
	if err != nil {
		return nil, "", "", fmt.Errorf("overhaul: attach microphone: %w", err)
	}
	camPath, err = sys.Helper.Attach(devfs.ClassCamera)
	if err != nil {
		return nil, "", "", fmt.Errorf("overhaul: attach camera: %w", err)
	}
	return sys, micPath, camPath, nil
}
