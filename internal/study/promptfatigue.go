package study

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"overhaul/internal/clock"
	"overhaul/internal/monitor"
	"overhaul/internal/prompt"
	"overhaul/internal/xserver"
)

// The paper rejects popup prompts citing Motiee et al.: users habituate,
// dismiss prompts "without due diligence", or disable them entirely.
// This experiment quantifies that choice using the repository's own
// prompt-mode extension: a user with a habituation model answers a mixed
// stream of legitimate and malicious permission prompts, and we measure
// how many malicious requests get waved through as fatigue grows —
// versus Overhaul's alert model, where malicious requests are blocked
// automatically and the only question is whether the user *notices*.

// FatigueConfig parameterises the comparison.
type FatigueConfig struct {
	// Prompts is the total number of permission questions the user
	// faces during the session (legitimate and malicious mixed).
	Prompts int
	// MaliciousFraction is the share of prompts triggered by malware.
	MaliciousFraction float64
	// Seed drives the stochastic user.
	Seed int64
}

// FatigueResult compares the two models on the same request stream.
type FatigueResult struct {
	Prompts   int `json:"prompts"`
	Malicious int `json:"malicious"`

	// Prompt model: malicious requests the habituated user allowed.
	PromptMisgrants int `json:"promptMisgrants"`
	// Prompt model: legitimate requests the annoyed user denied.
	PromptFalseDenies int `json:"promptFalseDenies"`

	// Alert model: malicious requests granted (always zero — Overhaul
	// blocks them without asking).
	AlertMisgrants int `json:"alertMisgrants"`
	// Alert model: malicious attempts whose alert the user missed
	// (privacy *notification* lost, but no data lost).
	AlertMissedNotices int `json:"alertMissedNotices"`
}

// ErrFatigue wraps harness failures.
var ErrFatigue = errors.New("study: prompt-fatigue run failed")

// habituation returns the probability the user blindly clicks "allow"
// after having already answered n prompts: starts diligent, degrades
// with exposure, and saturates — the Motiee et al. pattern.
func habituation(n int) float64 {
	p := 0.05 + 0.04*float64(n)
	if p > 0.9 {
		p = 0.9
	}
	return p
}

// RunPromptFatigue runs the comparison.
func RunPromptFatigue(cfg FatigueConfig) (FatigueResult, error) {
	if cfg.Prompts <= 0 {
		cfg.Prompts = 40
	}
	if cfg.MaliciousFraction <= 0 {
		cfg.MaliciousFraction = 0.25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	clk := clock.NewSimulated()
	pm, err := prompt.NewManager(clk, "tabby-cat", time.Minute)
	if err != nil {
		return FatigueResult{}, fmt.Errorf("%w: %v", ErrFatigue, err)
	}

	res := FatigueResult{Prompts: cfg.Prompts}
	hardware := promptAnswerEvent()
	for i := 0; i < cfg.Prompts; i++ {
		clk.Advance(2 * time.Minute)
		malicious := rng.Float64() < cfg.MaliciousFraction
		if malicious {
			res.Malicious++
		}

		// --- prompt model ---
		if _, err := pm.Ask(100+i, monitor.OpCam); err != nil {
			return FatigueResult{}, fmt.Errorf("%w: %v", ErrFatigue, err)
		}
		blind := rng.Float64() < habituation(i)
		var allow bool
		switch {
		case blind:
			// Habituated: click through whatever it is.
			allow = true
		case malicious:
			// Diligent user recognises the odd request.
			allow = false
		default:
			// Diligent user approves legitimate requests... usually.
			// Some deny out of annoyance (the "disable it" tail).
			allow = rng.Float64() > 0.1
		}
		ans, err := pm.AnswerWith(hardware, allow)
		if err != nil {
			return FatigueResult{}, fmt.Errorf("%w: %v", ErrFatigue, err)
		}
		if malicious && ans == prompt.AnswerAllow {
			res.PromptMisgrants++
		}
		if !malicious && ans == prompt.AnswerDeny {
			res.PromptFalseDenies++
		}

		// --- alert model ---
		if malicious {
			// Overhaul blocks it outright; the user may or may not
			// notice the alert (the §V-B noticing distribution).
			if rng.Float64() >= (attention.pInterrupt + attention.pNotice) {
				res.AlertMissedNotices++
			}
		}
	}
	return res, nil
}

// promptAnswerEvent builds the authentic hardware click the simulated
// user answers with.
func promptAnswerEvent() xserver.Event {
	return xserver.Event{Type: xserver.ButtonPress, Provenance: xserver.FromHardware}
}
