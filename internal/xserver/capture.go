package xserver

import "fmt"

// captureWindow returns a copy of the target window's content; target
// Root composes every mapped window bottom-to-top, which is what a full
// screenshot observes. Requires s.mu held.
func (s *Server) captureWindow(target WindowID) ([]byte, error) {
	if target == Root {
		total := 0
		for _, id := range s.stacking {
			if w := s.windows[id]; w != nil && w.mapped {
				total += len(w.content)
			}
		}
		out := make([]byte, 0, total)
		for _, id := range s.stacking {
			if w := s.windows[id]; w != nil && w.mapped {
				out = append(out, w.content...)
			}
		}
		return out, nil
	}
	w, err := s.lookupWindow(target)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(w.content))
	copy(out, w.content)
	return out, nil
}

// getImage implements both GetImage and XShmGetImage: they differ only
// in transport (the MIT-SHM extension hands pixels over shared memory),
// and both are mediated identically by Overhaul.
func (c *Client) getImage(req string, target WindowID) ([]byte, error) {
	if !c.alive() {
		return nil, ErrDisconnected
	}
	s := c.srv
	s.wire()
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	s.stats.CaptureRequests++

	// Capturing your own window is never mediated: the data is already
	// yours.
	ownWindow := false
	if target != Root {
		w, err := s.lookupWindow(target)
		if err != nil {
			return nil, err
		}
		ownWindow = w.owner == c
	}
	if !ownWindow {
		if !s.query(c.pid, OpScreen, now) {
			s.stats.CaptureDenied++
			return nil, fmt.Errorf("%s window %d by pid %d: %w", req, target, c.pid, ErrBadAccess)
		}
		if s.policy != nil {
			s.showAlertLocked(c.pid, OpScreen, false, false)
		}
	}
	return s.captureWindow(target)
}

// GetImage is the core protocol request for reading display contents:
// the full screen (Root) or a specific window. Under Overhaul the
// request is granted only when correlated with preceding user input.
func (c *Client) GetImage(target WindowID) ([]byte, error) {
	return c.getImage("GetImage", target)
}

// XShmGetImage is the MIT shared-memory variant of GetImage; Overhaul
// interposes on it identically (§IV-A, "Display contents").
func (c *Client) XShmGetImage(target WindowID) ([]byte, error) {
	return c.getImage("XShmGetImage", target)
}

// CopyArea copies a rectangle of display content between two drawables.
// Unlike GetImage it is heavily used for ordinary drawing, so Overhaul
// first inspects the buffer owners: a client copying within its own
// windows proceeds unmediated; copying from a *foreign* window (or the
// root) is screen capture by another name and goes through the same
// input-correlation check.
func (c *Client) CopyArea(src, dst WindowID) error {
	if !c.alive() {
		return ErrDisconnected
	}
	s := c.srv
	s.wire()
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	dstW, err := s.lookupWindow(dst)
	if err != nil {
		return err
	}
	if dstW.owner != c {
		return fmt.Errorf("CopyArea to window %d: %w", dst, ErrBadAccess)
	}

	sameOwner := false
	if src != Root {
		srcW, err := s.lookupWindow(src)
		if err != nil {
			return err
		}
		sameOwner = srcW.owner == dstW.owner
	}
	if !sameOwner {
		s.stats.CaptureRequests++
		if !s.query(c.pid, OpScreen, now) {
			s.stats.CaptureDenied++
			return fmt.Errorf("CopyArea from window %d by pid %d: %w", src, c.pid, ErrBadAccess)
		}
		if s.policy != nil {
			s.showAlertLocked(c.pid, OpScreen, false, false)
		}
	}

	content, err := s.captureWindow(src)
	if err != nil {
		return err
	}
	dstW.content = content
	return nil
}

// CopyPlane is the bit-plane variant of CopyArea; Overhaul treats it
// identically.
func (c *Client) CopyPlane(src, dst WindowID) error {
	return c.CopyArea(src, dst)
}
