// Package kernel is the stampcheck fixture for the constructor rule:
// building an IPC resource with a nil stamp store silently disables
// propagation.
package kernel

import "overhaul/internal/ipc"

// Kernel mimics the real kernel's stamp-store plumbing.
type Kernel struct{}

func (k *Kernel) stamps() ipc.Stamps { return nil }

// NewPipe threads the kernel's stamp store, as required.
func (k *Kernel) NewPipe() *ipc.Pipe {
	return ipc.NewPipe(k.stamps(), 0)
}

// NewLeakyPipe hardcodes nil and loses P2 propagation.
func (k *Kernel) NewLeakyPipe() *ipc.Pipe {
	return ipc.NewPipe(nil, 0) // want "nil stamp store"
}
