package devfs

import (
	"errors"
	"sync"
	"testing"

	"overhaul/internal/clock"
	"overhaul/internal/fs"
)

// fakeSink records mapping updates and can be told to fail.
type fakeSink struct {
	mu      sync.Mutex
	mapping map[string]Class
	fail    bool
}

func newFakeSink() *fakeSink {
	return &fakeSink{mapping: make(map[string]Class)}
}

func (s *fakeSink) UpdateMapping(path string, class Class) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return errors.New("sink unavailable")
	}
	s.mapping[path] = class
	return nil
}

func (s *fakeSink) RemoveMapping(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return errors.New("sink unavailable")
	}
	delete(s.mapping, path)
	return nil
}

func (s *fakeSink) classOf(path string) (Class, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.mapping[path]
	return c, ok
}

func newTestHelper(t *testing.T) (*Helper, *fs.FS, *fakeSink) {
	t.Helper()
	fsys := fs.New(clock.NewSimulated())
	sink := newFakeSink()
	h, err := NewHelper(fsys, sink)
	if err != nil {
		t.Fatalf("NewHelper: %v", err)
	}
	return h, fsys, sink
}

func TestAttachCreatesNodeAndMapping(t *testing.T) {
	tests := []struct {
		class    Class
		wantPath string
	}{
		{ClassCamera, "/dev/video0"},
		{ClassMicrophone, "/dev/snd/pcmC0D0c"},
		{ClassGPS, "/dev/gps0"},
		{ClassScanner, "/dev/scanner0"},
	}
	for _, tt := range tests {
		t.Run(string(tt.class), func(t *testing.T) {
			h, fsys, sink := newTestHelper(t)
			path, err := h.Attach(tt.class)
			if err != nil {
				t.Fatalf("Attach: %v", err)
			}
			if path != tt.wantPath {
				t.Fatalf("path = %s, want %s", path, tt.wantPath)
			}
			st, err := fsys.Stat(path)
			if err != nil {
				t.Fatalf("Stat: %v", err)
			}
			if st.Kind != fs.KindDevice || st.Device != string(tt.class) {
				t.Fatalf("node = %+v, want device of class %s", st, tt.class)
			}
			if c, ok := sink.classOf(path); !ok || c != tt.class {
				t.Fatalf("sink mapping = %v/%v, want %s", c, ok, tt.class)
			}
		})
	}
}

func TestAttachAllocatesSequentialNames(t *testing.T) {
	h, _, _ := newTestHelper(t)
	p0, err := h.Attach(ClassCamera)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	p1, err := h.Attach(ClassCamera)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if p0 != "/dev/video0" || p1 != "/dev/video1" {
		t.Fatalf("paths = %s, %s; want video0, video1", p0, p1)
	}
}

func TestAttachRejectsNonSensitiveClass(t *testing.T) {
	h, _, _ := newTestHelper(t)
	if _, err := h.Attach(Class("toaster")); !errors.Is(err, ErrNotSensitive) {
		t.Fatalf("Attach(toaster) = %v, want ErrNotSensitive", err)
	}
}

func TestAttachRollsBackOnSinkFailure(t *testing.T) {
	h, fsys, sink := newTestHelper(t)
	sink.fail = true
	if _, err := h.Attach(ClassCamera); err == nil {
		t.Fatal("Attach succeeded despite sink failure")
	}
	// The node must not linger unmapped: that would bypass mediation.
	if _, err := fsys.Stat("/dev/video0"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("orphan device node exists after failed attach: %v", err)
	}
}

func TestDetachRemovesNodeAndMapping(t *testing.T) {
	h, fsys, sink := newTestHelper(t)
	path, err := h.Attach(ClassMicrophone)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := h.Detach(path); err != nil {
		t.Fatalf("Detach: %v", err)
	}
	if _, err := fsys.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("node still exists after detach: %v", err)
	}
	if _, ok := sink.classOf(path); ok {
		t.Fatal("sink mapping still present after detach")
	}
	if err := h.Detach(path); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("double Detach = %v, want ErrUnknownDevice", err)
	}
}

func TestClassOf(t *testing.T) {
	h, _, _ := newTestHelper(t)
	path, err := h.Attach(ClassCamera)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	c, err := h.ClassOf(path)
	if err != nil || c != ClassCamera {
		t.Fatalf("ClassOf = %v, %v; want camera", c, err)
	}
	if _, err := h.ClassOf("/dev/absent"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("ClassOf(absent) = %v, want ErrUnknownDevice", err)
	}
}

func TestPathsSorted(t *testing.T) {
	h, _, _ := newTestHelper(t)
	for _, c := range []Class{ClassCamera, ClassMicrophone, ClassCamera} {
		if _, err := h.Attach(c); err != nil {
			t.Fatalf("Attach(%s): %v", c, err)
		}
	}
	paths := h.Paths()
	want := []string{"/dev/snd/pcmC0D0c", "/dev/video0", "/dev/video1"}
	if len(paths) != len(want) {
		t.Fatalf("Paths = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("Paths = %v, want %v", paths, want)
		}
	}
}

func TestDeviceNodesAreRootOwnedWorldRW(t *testing.T) {
	h, fsys, _ := newTestHelper(t)
	path, err := h.Attach(ClassCamera)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	st, err := fsys.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if st.Owner.UID != 0 {
		t.Fatalf("device owner = %+v, want root", st.Owner)
	}
	if st.Mode != 0o666 {
		t.Fatalf("device mode = %o, want 666", st.Mode)
	}
}

func TestNewHelperValidation(t *testing.T) {
	fsys := fs.New(clock.NewSimulated())
	if _, err := NewHelper(nil, newFakeSink()); err == nil {
		t.Fatal("NewHelper(nil fs) succeeded")
	}
	if _, err := NewHelper(fsys, nil); err == nil {
		t.Fatal("NewHelper(nil sink) succeeded")
	}
}

func TestSensitiveClassesStable(t *testing.T) {
	a := SensitiveClasses()
	b := SensitiveClasses()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("SensitiveClasses unstable: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SensitiveClasses unstable: %v vs %v", a, b)
		}
	}
	// Mutating the returned slice must not affect future calls.
	a[0] = Class("mutated")
	if c := SensitiveClasses()[0]; c == Class("mutated") {
		t.Fatal("SensitiveClasses aliases internal state")
	}
}
