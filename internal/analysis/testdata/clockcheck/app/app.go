// Package app is a clockcheck fixture: wall-clock reads outside
// internal/clock must be flagged, deterministic time constructors must
// not.
package app

import "time"

func now() time.Time {
	return time.Now() // want "time.Now"
}

func wait() {
	time.Sleep(time.Second) // want "time.Sleep"
}

func deadline() <-chan time.Time {
	return time.After(time.Minute) // want "time.After"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since"
}

// epoch is deterministic: constructors and arithmetic are fine.
func epoch() time.Time {
	return time.Date(2016, time.June, 28, 9, 0, 0, 0, time.UTC)
}

func window() time.Duration {
	return 2 * time.Second
}
