package telemetry

import "time"

// TraceID identifies one causally connected decision path (e.g. one
// user interaction and every enforcement step it enables). IDs are
// sequential from 1, never random, so traces are stable across runs.
type TraceID uint64

// SpanID identifies one span. IDs are sequential from 1 in creation
// order across all traces.
type SpanID uint64

// SpanContext is the propagation token: enough to link a child span to
// its parent across a process, channel, or IPC boundary. The zero value
// means "no context" and starts a fresh trace.
//
// Contexts ride the same paths interaction timestamps do: the netlink
// message structs carry one alongside the stamp time, the kernel's
// task struct stores the context that minted the current stamp
// (inherited on fork, P1), and the IPC carriers embed it next to the
// stamp they propagate (P2).
type SpanContext struct {
	Trace TraceID `json:"trace"`
	Span  SpanID  `json:"span"`
}

// Valid reports whether the context names a real span.
func (c SpanContext) Valid() bool { return c.Trace != 0 && c.Span != 0 }

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed step on a decision path. Spans are created by
// Recorder.StartSpan and must be closed with End on every return path
// (the spancheck analyzer enforces this mechanically). All methods are
// no-ops on a nil receiver, so instrumented code needs no nil checks
// when telemetry is disabled.
type Span struct {
	rec *Recorder
	ctx SpanContext

	// The fields below are guarded by rec.mu.
	parent    SpanID
	subsystem string
	name      string
	start     time.Time
	end       time.Time
	ended     bool
	attrs     []Attr
}

// StartSpan opens a span under parent. A zero parent starts a new
// trace. Returns nil (a usable no-op span) on a nil recorder.
func (r *Recorder) StartSpan(parent SpanContext, subsystem, name string) *Span {
	if r == nil {
		return nil
	}
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spanSeq++
	trace := parent.Trace
	if trace == 0 {
		r.traceSeq++
		trace = TraceID(r.traceSeq)
	}
	s := &Span{
		rec:       r,
		ctx:       SpanContext{Trace: trace, Span: SpanID(r.spanSeq)},
		parent:    parent.Span,
		subsystem: subsystem,
		name:      name,
		start:     now,
	}
	if len(r.spans) >= r.spanCap {
		// Drop-oldest keeps the recorder bounded; the drop is counted so
		// a truncated trace is distinguishable from a complete one.
		copy(r.spans, r.spans[1:])
		r.spans[len(r.spans)-1] = s
		r.spansDropped++
	} else {
		r.spans = append(r.spans, s)
	}
	return s
}

// Context returns the span's propagation token (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// Annotate attaches a key/value attribute to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span at the recorder's current instant. Ending twice
// keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.rec.now()
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.end = now
}

// SpanRecord is the immutable snapshot form of a span.
type SpanRecord struct {
	Trace     TraceID   `json:"trace"`
	ID        SpanID    `json:"id"`
	Parent    SpanID    `json:"parent,omitempty"`
	Subsystem string    `json:"subsystem"`
	Name      string    `json:"name"`
	Start     time.Time `json:"start"`
	End       time.Time `json:"end,omitempty"`
	Ended     bool      `json:"ended"`
	Attrs     []Attr    `json:"attrs,omitempty"`
}

// recordLocked snapshots one span. Requires r.mu held.
func (s *Span) recordLocked() SpanRecord {
	attrs := make([]Attr, len(s.attrs))
	copy(attrs, s.attrs)
	return SpanRecord{
		Trace:     s.ctx.Trace,
		ID:        s.ctx.Span,
		Parent:    s.parent,
		Subsystem: s.subsystem,
		Name:      s.name,
		Start:     s.start,
		End:       s.end,
		Ended:     s.ended,
		Attrs:     attrs,
	}
}

// Spans returns every retained span in creation order.
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.spans))
	for _, s := range r.spans {
		out = append(out, s.recordLocked())
	}
	return out
}

// SpansDropped reports how many spans were evicted by the bound.
func (r *Recorder) SpansDropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spansDropped
}

// TraceOf resolves the trace a span belongs to.
func (r *Recorder) TraceOf(id SpanID) (TraceID, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.spans {
		if s.ctx.Span == id {
			return s.ctx.Trace, true
		}
	}
	return 0, false
}

// TraceSpans returns the retained spans of one trace, in creation
// order (which is also causal order: parents are created before their
// children).
func (r *Recorder) TraceSpans(t TraceID) []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SpanRecord
	for _, s := range r.spans {
		if s.ctx.Trace == t {
			out = append(out, s.recordLocked())
		}
	}
	return out
}

// Subsystems returns the distinct subsystems appearing in the given
// records, sorted (diagnostics and acceptance checks).
func Subsystems(spans []SpanRecord) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range spans {
		if !seen[s.Subsystem] {
			seen[s.Subsystem] = true
			out = append(out, s.Subsystem)
		}
	}
	// Insertion order is creation order; sort for set semantics.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
