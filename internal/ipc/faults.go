package ipc

import (
	"time"

	"overhaul/internal/faultinject"
)

// faultyStamps decorates a Stamps store with injected write failures:
// when the PointStampWrite fault fires, Adopt silently loses the
// update. This models a transient failure of the kernel-side stamp
// store. The degradation is fail closed by construction — a lost
// Adopt means the receiving process keeps an *older* stamp, so a
// subsequent temporal-proximity check can only deny where it would
// otherwise have granted, never the reverse.
type faultyStamps struct {
	st   Stamps
	hook faultinject.Hook
}

// FaultyStamps wraps st so that stamp-store writes consult hook at
// PointStampWrite. A nil hook (or nil st) returns st unchanged.
func FaultyStamps(st Stamps, hook faultinject.Hook) Stamps {
	if st == nil || hook == nil {
		return st
	}
	return &faultyStamps{st: st, hook: hook}
}

// Stamp implements Stamps. Reads are never faulted: the threat model
// injects *write* failures (the store losing an update), and a faulted
// read would be indistinguishable from "no interaction", which Adopt
// faults already cover.
func (f *faultyStamps) Stamp(pid int) (time.Time, bool) { return f.st.Stamp(pid) }

// Adopt implements Stamps; an injected fault drops the write.
func (f *faultyStamps) Adopt(pid int, t time.Time) {
	if faultinject.Eval(f.hook, faultinject.PointStampWrite).Injected() {
		return // update lost; receiver keeps its older (staler) stamp
	}
	f.st.Adopt(pid, t)
}
