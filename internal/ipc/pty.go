package ipc

import (
	"fmt"
	"sync"
	"time"
)

// Pty is a pseudo-terminal pair: a master end (held by the terminal
// emulator) and a slave end (the controlling terminal of the shell).
//
// The paper's CLI-interaction support (§IV-B) lives here: the terminal
// emulator receives X input events and writes the command line to the
// master end; Overhaul embeds the writer's interaction timestamp into
// the pty's kernel data structure, and the shell adopts it when it reads
// from the slave end. Anything the shell subsequently forks inherits the
// stamp through P1, so command-line tools that open protected devices
// keep working.
type Pty struct {
	st Stamps

	// ts synchronizes itself with atomics; it is not guarded by mu.
	ts carrier

	mu         sync.Mutex
	toSlave    []byte // written at master, read at slave
	toMaster   []byte // written at slave, read at master
	masterOpen bool
	slaveOpen  bool
}

// NewPty allocates a pseudo-terminal pair.
func NewPty(st Stamps) *Pty {
	return &Pty{st: st, masterOpen: true, slaveOpen: true}
}

// PtyEnd selects a pty endpoint.
type PtyEnd int

// Pty endpoints.
const (
	Master PtyEnd = iota + 1
	Slave
)

// String names the endpoint.
func (e PtyEnd) String() string {
	switch e {
	case Master:
		return "master"
	case Slave:
		return "slave"
	default:
		return fmt.Sprintf("PtyEnd(%d)", int(e))
	}
}

// Write writes data at the given end on behalf of pid, embedding pid's
// stamp into the pty.
func (t *Pty) Write(end PtyEnd, pid int, data []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch end {
	case Master:
		if !t.masterOpen {
			return 0, fmt.Errorf("pty master write: %w", ErrClosedPipe)
		}
		t.toSlave = append(t.toSlave, data...)
	case Slave:
		if !t.slaveOpen {
			return 0, fmt.Errorf("pty slave write: %w", ErrClosedPipe)
		}
		t.toMaster = append(t.toMaster, data...)
	default:
		return 0, fmt.Errorf("pty write: invalid end %v", end)
	}
	t.ts.onSend(t.st, pid)
	return len(data), nil
}

// Read reads pending bytes at the given end on behalf of pid, adopting
// the pty's stamp if newer.
func (t *Pty) Read(end PtyEnd, pid int, dst []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var buf *[]byte
	switch end {
	case Master:
		if !t.masterOpen {
			return 0, fmt.Errorf("pty master read: %w", ErrClosedPipe)
		}
		buf = &t.toMaster
	case Slave:
		if !t.slaveOpen {
			return 0, fmt.Errorf("pty slave read: %w", ErrClosedPipe)
		}
		buf = &t.toSlave
	default:
		return 0, fmt.Errorf("pty read: invalid end %v", end)
	}
	if len(*buf) == 0 {
		return 0, fmt.Errorf("pty %s read: %w", end, ErrEmpty)
	}
	n := copy(dst, *buf)
	*buf = (*buf)[n:]
	t.ts.onRecv(t.st, pid)
	return n, nil
}

// CloseEnd closes one endpoint.
func (t *Pty) CloseEnd(end PtyEnd) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch end {
	case Master:
		if !t.masterOpen {
			return ErrClosedPipe
		}
		t.masterOpen = false
	case Slave:
		if !t.slaveOpen {
			return ErrClosedPipe
		}
		t.slaveOpen = false
	default:
		return fmt.Errorf("pty close: invalid end %v", end)
	}
	return nil
}

// EmbeddedStamp exposes the pty's carried timestamp.
func (t *Pty) EmbeddedStamp() time.Time { return t.ts.stampValue() }
