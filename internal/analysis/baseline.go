package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A baseline is the committed ledger of known findings: the lint gate
// fails on *regressions* relative to it, not on the absolute count.
// Entries are keyed by (file, analyzer, message) with an occurrence
// count and deliberately ignore line numbers, so unrelated edits that
// shift a known finding up or down a file do not break CI; moving a
// finding to a different file, or introducing a second instance of a
// baselined one, does.

// BaselineEntry is one known finding class.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is the serialized form of the committed baseline file.
type Baseline struct {
	// Comment documents the file's purpose for people who open it.
	Comment string          `json:"comment,omitempty"`
	Entries []BaselineEntry `json:"entries"`
}

func baselineKey(file, analyzer, message string) string {
	return file + "\x00" + analyzer + "\x00" + message
}

// LoadBaseline reads a baseline file. A missing file is an error: the
// caller decides whether absence means "empty baseline" (no -baseline
// flag) or a misconfiguration (flag pointing at nothing).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline: parse %s: %w", path, err)
	}
	return &b, nil
}

// NewBaseline builds a baseline from a finding set.
func NewBaseline(diags []Diagnostic) *Baseline {
	counts := make(map[string]*BaselineEntry)
	var order []string
	for _, d := range diags {
		k := baselineKey(d.File, d.Analyzer, d.Message)
		if e := counts[k]; e != nil {
			e.Count++
			continue
		}
		counts[k] = &BaselineEntry{File: d.File, Analyzer: d.Analyzer, Message: d.Message, Count: 1}
		order = append(order, k)
	}
	sort.Strings(order)
	b := &Baseline{
		Comment: "known findings tolerated by CI; regenerate with overhaul-lint -write-baseline (or make lint-baseline)",
		Entries: []BaselineEntry{},
	}
	for _, k := range order {
		b.Entries = append(b.Entries, *counts[k])
	}
	return b
}

// WriteBaseline serializes b to path.
func (b *Baseline) WriteBaseline(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	return nil
}

// Filter splits diags into fresh findings (not covered by the
// baseline) and the number suppressed as known. Each baseline entry
// absorbs at most Count findings of its key.
func (b *Baseline) Filter(diags []Diagnostic) (fresh []Diagnostic, known int) {
	budget := make(map[string]int, len(b.Entries))
	for _, e := range b.Entries {
		budget[baselineKey(e.File, e.Analyzer, e.Message)] += e.Count
	}
	for _, d := range diags {
		k := baselineKey(d.File, d.Analyzer, d.Message)
		if budget[k] > 0 {
			budget[k]--
			known++
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, known
}
